#include "service/controller.h"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/admission.h"
#include "runtime/wire.h"
#include "core/capacity_index.h"

namespace vmcw::service {

std::uint64_t fleet_config_hash(const ControllerConfig& config) {
  wire::ByteWriter w;
  w.u64(config.pool.class_count());
  for (std::size_t i = 0; i < config.pool.class_count(); ++i) {
    const HostClass& c = config.pool.host_class(i);
    w.str(c.spec.model);
    w.f64(c.spec.cpu_rpe2);
    w.f64(c.spec.memory_mb);
    w.u64(c.count);
  }
  w.f64(config.utilization_bound);
  w.f64(config.drain_below);
  w.u64(config.envelope_window);
  w.u64(config.stale_after);
  w.u8(config.domains.spread ? 1 : 0);
  w.u64(config.domains.spread_k);
  w.u64(config.domains.hosts_per_rack);
  w.u64(config.domains.racks_per_power_domain);
  return wire::fnv1a64(w.bytes().data(), w.bytes().size());
}

ResourceVector IncrementalController::VmState::envelope() const noexcept {
  ResourceVector env;
  for (const ResourceVector& sample : window) {
    env.cpu_rpe2 = std::max(env.cpu_rpe2, sample.cpu_rpe2);
    env.memory_mb = std::max(env.memory_mb, sample.memory_mb);
  }
  return env;
}

void IncrementalController::VmState::observe(std::uint64_t tick,
                                             const ResourceVector& demand,
                                             std::size_t window_cap) {
  last_seen = std::max(last_seen, tick);
  const std::size_t cap = std::max<std::size_t>(1, window_cap);
  if (window.size() < cap)
    window.push_back(demand);
  else
    window[window_next] = demand;
  window_next = (window_next + 1) % cap;
}

IncrementalController::IncrementalController(ControllerConfig config)
    : config_(std::move(config)), fleet_hash_(fleet_config_hash(config_)) {}

void IncrementalController::apply(const Frame& frame) {
  std::visit(
      [&](const auto& f) {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, HelloFrame>) {
          if (f.version != kProtocolVersion)
            throw std::runtime_error("controller: protocol version mismatch");
          if (f.fleet_hash != 0 && f.fleet_hash != fleet_hash_)
            throw std::runtime_error("controller: fleet config hash mismatch");
        } else if constexpr (std::is_same_v<T, FlushFrame>) {
          throw std::logic_error("controller: Flush frames go through tick()");
        } else if constexpr (std::is_same_v<T, HostTelemetryDeltaFrame>) {
          on_telemetry(f);
        } else if constexpr (std::is_same_v<T, VmArrivalFrame>) {
          on_arrival(f);
        } else if constexpr (std::is_same_v<T, VmDepartureFrame>) {
          on_departure(f);
        }
        // Heartbeat, Shutdown and (replayed) DecisionBatch frames carry no
        // placement state.
      },
      frame);
}

void IncrementalController::on_arrival(const VmArrivalFrame& frame) {
  const auto it = index_of_.find(frame.vm);
  if (it != index_of_.end() && vms_[it->second].resident)
    return;  // duplicate arrival: first one wins

  // A re-arrival of a departed id gets a fresh dense slot; dense indices
  // are never reused, so placement history stays unambiguous.
  const std::size_t dense = vms_.size();
  VmState state;
  state.id = frame.vm;
  state.app = frame.app;
  state.resident = true;
  state.observe(frame.tick, ResourceVector{frame.cpu_rpe2, frame.memory_mb},
                config_.envelope_window);
  vms_.push_back(std::move(state));
  index_of_[frame.vm] = dense;
  pending_.push_back(dense);
  host_of_.push_back(Placement::kUnplaced);
  constraints_dirty_ = true;
}

void IncrementalController::on_departure(const VmDepartureFrame& frame) {
  const auto it = index_of_.find(frame.vm);
  if (it == index_of_.end()) return;
  VmState& state = vms_[it->second];
  if (!state.resident) return;
  state.resident = false;
  if (state.admitted) {
    host_of_[it->second] = Placement::kUnplaced;
    state.admitted = false;
  }
  pending_.erase(std::remove(pending_.begin(), pending_.end(), it->second),
                 pending_.end());
  constraints_dirty_ = true;
}

void IncrementalController::on_telemetry(const HostTelemetryDeltaFrame& frame) {
  for (const VmSample& sample : frame.samples) {
    const auto it = index_of_.find(sample.vm);
    if (it == index_of_.end() || !vms_[it->second].resident) continue;
    vms_[it->second].observe(frame.tick,
                             ResourceVector{sample.cpu_rpe2, sample.memory_mb},
                             config_.envelope_window);
  }
}

void IncrementalController::rebuild_constraints() {
  constraints_ = ConstraintSet(vms_.size());
  if (!config_.domains.spread || config_.domains.spread_k < 2) return;

  // Ordered by app label, members in dense (arrival) order — the same
  // deterministic shape at any thread count.
  std::map<std::string, std::vector<std::size_t>> apps;
  for (std::size_t vm = 0; vm < vms_.size(); ++vm)
    if (vms_[vm].resident && !vms_[vm].app.empty())
      apps[vms_[vm].app].push_back(vm);

  // Affine domain maps over the whole (possibly unlimited) pool — the
  // extrapolation-tail shape topology/spread uses past its table.
  DomainLookup rack;
  rack.tail_first_domain = 0;
  rack.tail_hosts_per_domain =
      std::max<std::size_t>(1, config_.domains.hosts_per_rack);
  DomainLookup power;
  power.tail_first_domain = 0;
  power.tail_hosts_per_domain = std::max<std::size_t>(
      1, config_.domains.hosts_per_rack * config_.domains.racks_per_power_domain);

  for (const auto& [app, members] : apps) {
    const std::size_t n = members.size();
    if (n < 2) continue;
    const std::size_t k_eff = std::min(config_.domains.spread_k, n);
    if (k_eff < 2) continue;
    const std::size_t cap = (n + k_eff - 1) / k_eff;
    if (cap >= n) continue;  // would constrain nothing
    constraints_.add_domain_spread(members, rack, cap);
    constraints_.add_domain_spread(members, power, cap);
  }
}

DecisionBatchFrame IncrementalController::tick(std::uint64_t now) {
  DecisionBatchFrame batch;
  batch.tick = now;
  if (constraints_dirty_) {
    rebuild_constraints();
    constraints_dirty_ = false;
  }

  const std::size_t n = vms_.size();
  std::vector<ResourceVector> sizes(n);
  for (std::size_t vm = 0; vm < n; ++vm)
    if (vms_[vm].resident) sizes[vm] = vms_[vm].envelope();

  // Materialize the resident placement for the admission/repair machinery
  // (host_of_ is the O(1)-growable source of truth between ticks).
  Placement placement(n);
  for (std::size_t vm = 0; vm < n; ++vm)
    if (host_of_[vm] != Placement::kUnplaced)
      placement.assign(vm, host_of_[vm]);

  std::vector<ResourceVector> host_load(placement.host_index_bound());
  for (std::size_t vm = 0; vm < n; ++vm) {
    const std::int32_t host = placement.host_of(vm);
    if (host != Placement::kUnplaced)
      host_load[static_cast<std::size_t>(host)] += sizes[vm];
  }

  // Free-capacity index over the open hosts: admission and repair-drain
  // below find targets in O(log n) instead of rescanning the fleet every
  // decision (the dominant tick cost at fleet scale). Rebuilt per tick
  // because envelopes move every tick anyway; the build is one O(n) pass.
  CapacityIndex capacity_index;
  capacity_index.reserve(host_load.size());
  for (std::size_t host = 0; host < host_load.size(); ++host)
    capacity_index.push_host(
        config_.pool.capacity_of(host, config_.utilization_bound));
  for (std::size_t host = 0; host < host_load.size(); ++host)
    capacity_index.set_load(host, host_load[host]);

  // Degraded mode: hosts whose residents went silent are frozen out of
  // every placement change this tick.
  std::vector<std::size_t> stale;
  std::vector<std::uint8_t> frozen(host_load.size(), 0);
  for (std::size_t vm = 0; vm < n; ++vm) {
    const VmState& state = vms_[vm];
    if (!state.resident || !state.admitted) continue;
    if (now > state.last_seen + config_.stale_after) {
      stale.push_back(vm);
      frozen[static_cast<std::size_t>(placement.host_of(vm))] = 1;
    }
  }
  batch.degraded = !stale.empty();
  degraded_ = batch.degraded;

  // Admissions, in arrival order, through the packers' single-VM path. A
  // VM that fits nowhere holds and stays queued for the next tick.
  std::vector<std::size_t> still_pending;
  for (const std::size_t vm : pending_) {
    AdmissionOptions options;
    options.frozen_hosts = frozen;
    options.index = &capacity_index;
    const auto host =
        admit_one(vm, sizes[vm], host_load, config_.pool,
                  config_.utilization_bound, constraints_, placement, options);
    if (host) {
      vms_[vm].admitted = true;
      batch.decisions.push_back({vms_[vm].id, DecisionAction::kAdmit,
                                 DecisionReason::kAdmitted, -1,
                                 static_cast<std::int32_t>(*host)});
    } else {
      still_pending.push_back(vm);
      batch.decisions.push_back({vms_[vm].id, DecisionAction::kHold,
                                 DecisionReason::kNoCapacity, -1, -1});
    }
  }
  pending_ = std::move(still_pending);

  for (const std::size_t vm : stale) {
    const std::int32_t host = placement.host_of(vm);
    batch.decisions.push_back({vms_[vm].id, DecisionAction::kHold,
                               DecisionReason::kStaleTelemetry, host, host});
  }

  // Threshold-triggered incremental re-plan of the unfrozen fleet.
  const RepairOutcome outcome = repair_and_drain(
      sizes, placement, host_load, config_.pool, config_.utilization_bound,
      config_.drain_below, constraints_, frozen, &capacity_index);
  for (const PlacementMove& move : outcome.repair_moves) {
    vms_[move.vm].admitted = true;
    batch.decisions.push_back({vms_[move.vm].id, DecisionAction::kMigrate,
                               DecisionReason::kContention, move.from,
                               move.to});
  }
  for (const std::size_t host : outcome.unresolved_hosts) {
    // The overload persists; hold the host's first resident explicitly so
    // the operator sees the stuck host in the decision log.
    for (std::size_t vm = 0; vm < n; ++vm) {
      if (placement.host_of(vm) != static_cast<std::int32_t>(host)) continue;
      batch.decisions.push_back({vms_[vm].id, DecisionAction::kHold,
                                 DecisionReason::kNoCapacity,
                                 static_cast<std::int32_t>(host),
                                 static_cast<std::int32_t>(host)});
      break;
    }
  }
  for (const PlacementMove& move : outcome.drain_moves)
    batch.decisions.push_back({vms_[move.vm].id, DecisionAction::kMigrate,
                               DecisionReason::kUnderutilization, move.from,
                               move.to});

  for (std::size_t vm = 0; vm < n; ++vm) host_of_[vm] = placement.host_of(vm);
  return batch;
}

void IncrementalController::save_state(wire::ByteWriter& w) const {
  w.u64(vms_.size());
  for (const VmState& vm : vms_) {
    w.u64(vm.id);
    w.str(vm.app);
    w.u8(vm.resident ? 1 : 0);
    w.u8(vm.admitted ? 1 : 0);
    w.u64(vm.last_seen);
    w.u64(vm.window_next);
    w.u64(vm.window.size());
    for (const ResourceVector& sample : vm.window) {
      w.f64(sample.cpu_rpe2);
      w.f64(sample.memory_mb);
    }
  }
  w.u64(host_of_.size());
  for (const std::int32_t host : host_of_) w.i32(host);
  w.vec_u64(pending_);
  w.u8(degraded_ ? 1 : 0);
}

void IncrementalController::restore_state(wire::ByteReader& r) {
  vms_.clear();
  index_of_.clear();
  host_of_.clear();
  pending_.clear();
  degraded_ = false;
  constraints_dirty_ = true;
  try {
    const std::uint64_t n = r.u64();
    vms_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      VmState vm;
      vm.id = r.u64();
      vm.app = r.str();
      vm.resident = r.u8() != 0;
      vm.admitted = r.u8() != 0;
      vm.last_seen = r.u64();
      vm.window_next = r.u64();
      const std::uint64_t samples = r.u64();
      if (samples > std::max<std::size_t>(1, config_.envelope_window))
        throw std::runtime_error("controller: snapshot window overruns");
      vm.window.reserve(samples);
      for (std::uint64_t s = 0; s < samples; ++s) {
        ResourceVector sample;
        sample.cpu_rpe2 = r.f64();
        sample.memory_mb = r.f64();
        vm.window.push_back(sample);
      }
      if (vm.window_next > vm.window.size())
        throw std::runtime_error("controller: snapshot ring cursor overruns");
      vms_.push_back(std::move(vm));
    }
    if (r.u64() != n)
      throw std::runtime_error("controller: snapshot host map size mismatch");
    host_of_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) host_of_.push_back(r.i32());
    pending_ = r.vec_u64();
    for (const std::size_t dense : pending_)
      if (dense >= vms_.size())
        throw std::runtime_error("controller: snapshot FIFO index overruns");
    degraded_ = r.u8() != 0;
    if (!r.exhausted())
      throw std::runtime_error("controller: snapshot has trailing bytes");
  } catch (...) {
    vms_.clear();
    index_of_.clear();
    host_of_.clear();
    pending_.clear();
    degraded_ = false;
    throw;
  }
  // Dense indices are append-only and a re-arrival points the map at its
  // newest slot (on_arrival), so rebuilding in dense order — later entries
  // overwriting earlier ones — reproduces the live map exactly.
  for (std::size_t dense = 0; dense < vms_.size(); ++dense)
    index_of_[vms_[dense].id] = dense;
}

std::size_t IncrementalController::resident_vms() const noexcept {
  std::size_t count = 0;
  for (const VmState& state : vms_)
    if (state.resident) ++count;
  return count;
}

std::int32_t IncrementalController::host_of(std::uint64_t vm) const noexcept {
  const auto it = index_of_.find(vm);
  if (it == index_of_.end() || !vms_[it->second].resident ||
      !vms_[it->second].admitted)
    return Placement::kUnplaced;
  return host_of_[it->second];
}

std::size_t IncrementalController::active_hosts() const {
  std::set<std::int32_t> hosts;
  for (const std::int32_t host : host_of_)
    if (host != Placement::kUnplaced) hosts.insert(host);
  return hosts.size();
}

}  // namespace vmcw::service
