// The online consolidation daemon: WAL-first frame ingestion around the
// incremental controller.
//
// Two modes share one code path:
//
//  - live: ingest() appends each frame to the telemetry WAL (fdatasync'd)
//    *before* the controller sees it; a Flush frame additionally runs the
//    controller tick and appends the DecisionBatch to the decision log
//    before reporting it. Socket ingestion is a thin producer in front of
//    ingest() — the WAL, not the socket, is the source of truth.
//  - replay: replay_wal() feeds a recorded WAL's frames through the same
//    apply/tick sequence. Because live mode is WAL-first, the decision
//    log of a replay is byte-identical to the live session's.
//
// Resume after a crash: the decision log's intact prefix (K batches) is
// recovered, the input frames are re-applied recomputing every batch, and
// the first K recomputed batches are skipped instead of re-appended — the
// resumed log is byte-identical to an uninterrupted run. Both logs carry
// the fleet-config hash, so a stream is never resumed against a different
// fleet shape.
#pragma once

#include <cstdint>
#include <string>

#include "service/controller.h"
#include "service/telemetry_log.h"

namespace vmcw::service {

/// Running decision totals, updated per emitted batch.
struct DaemonStats {
  std::size_t frames = 0;   ///< input frames applied (Flush included)
  std::size_t batches = 0;  ///< DecisionBatch frames emitted
  std::size_t admits = 0;
  std::size_t migrations = 0;
  std::size_t holds = 0;
  std::size_t degraded_ticks = 0;
};

class Daemon {
 public:
  struct Options {
    std::string wal_path;        ///< telemetry WAL (input side)
    std::string decisions_path;  ///< decision log (output side)
    bool resume = false;  ///< recover both logs instead of truncating
    bool durable = true;  ///< fdatasync each append (off: bulk benching)
  };

  struct OpenResult {
    std::size_t frames_recovered = 0;   ///< input frames re-applied
    std::size_t batches_recovered = 0;  ///< decision batches kept durable
    bool wal_stale = false;
    bool decisions_stale = false;
    /// The recovered input frames themselves. The ingestion front-end
    /// seeds its duplicate filter from these: a collector resending a
    /// frame that was durable before the crash must be acked, not
    /// re-appended (exactly-once in the WAL across daemon restarts).
    std::vector<Frame> wal_frames;
  };

  Daemon(ControllerConfig config, Options options);

  /// Open both logs; with resume, re-apply the recovered input frames
  /// (recomputing decision batches, skipping the append of the ones
  /// already durable). The controller afterwards sits exactly where the
  /// crashed session left it.
  OpenResult open();

  /// WAL-first ingestion of one frame. Flush frames run the controller
  /// tick and append the batch to the decision log. Requires open().
  DecisionBatchFrame ingest(const Frame& frame);

  void close();

  const IncrementalController& controller() const noexcept {
    return controller_;
  }
  const DaemonStats& stats() const noexcept { return stats_; }

  /// Install I/O hooks on both logs (nullptr restores the real default);
  /// how tests and the chaos harness inject write faults and fsync
  /// stalls. Call before open().
  void set_io_hooks(WalIoHooks* hooks) noexcept {
    wal_.set_io_hooks(hooks);
    decisions_.set_io_hooks(hooks);
  }

  /// Latency of the telemetry WAL's most recent fdatasync (seconds); what
  /// the ingestion front-end's stall detector samples after each durable
  /// append.
  double last_fsync_seconds() const { return wal_.last_sync_seconds(); }

  /// Re-fsync the telemetry WAL without appending anything: the shed
  /// detector's recovery probe. While every incoming data frame is being
  /// rejected, nothing would otherwise measure the disk, so the ingest
  /// writer probes before each shed rejection and recovers the moment a
  /// probe comes back under the recovery threshold.
  void probe_wal() { wal_.sync(); }

 private:
  DecisionBatchFrame apply(const Frame& frame, bool emit);

  ControllerConfig config_;
  Options options_;
  std::uint64_t fleet_hash_ = 0;
  IncrementalController controller_;
  FrameLog wal_;
  FrameLog decisions_;
  std::size_t batches_skipped_ = 0;  ///< recovered batches left to skip
  DaemonStats stats_;
};

/// Replay a recorded WAL end to end, writing (or with resume, completing)
/// the decision log at `decisions_path`. The input WAL is opened read-only
/// and never modified. Throws std::runtime_error when the WAL cannot be
/// read or was recorded for a different fleet configuration.
DaemonStats replay_wal(const std::string& wal_path,
                       const std::string& decisions_path,
                       const ControllerConfig& config, bool resume,
                       bool durable = true);

}  // namespace vmcw::service
