// The online consolidation daemon: WAL-first frame ingestion around the
// incremental controller.
//
// Two modes share one code path:
//
//  - live: ingest() appends each frame to the telemetry WAL (fdatasync'd)
//    *before* the controller sees it; a Flush frame additionally runs the
//    controller tick and appends the DecisionBatch to the decision log
//    before reporting it. Socket ingestion is a thin producer in front of
//    ingest() — the WAL, not the socket, is the source of truth.
//  - replay: replay_wal() feeds a recorded WAL's frames through the same
//    apply/tick sequence. Because live mode is WAL-first, the decision
//    log of a replay is byte-identical to the live session's.
//
// Resume after a crash: the decision log's intact prefix (K batches) is
// recovered, the input frames are re-applied recomputing every batch, and
// the first K recomputed batches are skipped instead of re-appended — the
// resumed log is byte-identical to an uninterrupted run. Both logs carry
// the fleet-config hash, so a stream is never resumed against a different
// fleet shape.
//
// Bounded recovery (DESIGN.md §9): with a snapshot path configured, the
// daemon periodically checkpoints the controller (service/snapshot) and,
// with segment rotation on, reclaims WAL segments older than the newest
// durable snapshot. Resume then restores the snapshot and re-applies only
// the WAL suffix past its coverage — the decision log stays byte-identical
// to a cold full-WAL replay, but restart cost is bounded by the snapshot
// cadence instead of total uptime.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "service/controller.h"
#include "service/telemetry_log.h"

namespace vmcw::service {

/// Running decision totals, updated per emitted batch.
struct DaemonStats {
  std::size_t frames = 0;   ///< input frames applied (Flush included)
  std::size_t batches = 0;  ///< DecisionBatch frames emitted
  std::size_t admits = 0;
  std::size_t migrations = 0;
  std::size_t holds = 0;
  std::size_t degraded_ticks = 0;
  std::size_t snapshots_written = 0;
  std::size_t segments_reclaimed = 0;  ///< sealed WAL segments unlinked
};

class Daemon {
 public:
  struct Options {
    std::string wal_path;        ///< telemetry WAL (input side)
    std::string decisions_path;  ///< decision log (output side)
    bool resume = false;  ///< recover both logs instead of truncating
    bool durable = true;  ///< fdatasync each append (off: bulk benching)
    /// Frames per WAL segment; 0 keeps the legacy single-file WAL.
    std::uint64_t segment_frames = 0;
    /// Snapshot file path; empty disables checkpointing entirely.
    std::string snapshot_path;
    /// Checkpoint every N applied frames (0 = no frame-count trigger).
    std::uint64_t snapshot_every_frames = 0;
    /// Checkpoint every M seconds of WalIoHooks::now() time (0 = off).
    double snapshot_every_seconds = 0.0;
    /// Keep pre-snapshot segments instead of reclaiming them (a replay
    /// harness that wants the full chain on disk sets this).
    bool retain_segments = false;
  };

  struct OpenResult {
    std::size_t frames_recovered = 0;   ///< input frames re-applied (suffix)
    std::size_t batches_recovered = 0;  ///< decision batches kept durable
    bool wal_stale = false;
    bool decisions_stale = false;
    bool snapshot_loaded = false;
    /// Frames the loaded snapshot covered (0 when none): the recovery
    /// replayed only the WAL past this ordinal.
    std::uint64_t snapshot_frames = 0;
    /// Cumulative-Ack high-water marks persisted with the snapshot; the
    /// ingestion front-end seeds its per-peer ack state from them so a
    /// collector resending pre-snapshot history is re-acked off the mark
    /// (the frames themselves are no longer in the replayed suffix).
    std::map<std::string, std::uint64_t> ack_marks;
    /// The re-applied input frames themselves. The ingestion front-end
    /// seeds its duplicate filter from these: a collector resending a
    /// frame that was durable before the crash must be acked, not
    /// re-appended (exactly-once in the WAL across daemon restarts).
    std::vector<Frame> wal_frames;
    /// Shutdown frames durable across the whole recovered stream: the
    /// snapshot's count plus the replayed suffix. The ingestion front-end
    /// seeds its expected-shutdowns exit condition from this — a collector
    /// whose Shutdown was acked before the crash has exited and will never
    /// resend it, so a daemon restarted after ingest completed must exit
    /// promptly instead of waiting for traffic that cannot arrive.
    std::uint64_t shutdowns_recovered = 0;
  };

  Daemon(ControllerConfig config, Options options);

  /// Open both logs; with resume, restore the newest valid snapshot (if
  /// configured) and re-apply the recovered input suffix (recomputing
  /// decision batches, skipping the append of the ones already durable).
  /// The controller afterwards sits exactly where the crashed session
  /// left it. Throws std::runtime_error when the WAL head was reclaimed
  /// and no usable snapshot covers the missing prefix.
  OpenResult open();

  /// WAL-first ingestion of one frame. Flush frames run the controller
  /// tick and append the batch to the decision log. Requires open().
  DecisionBatchFrame ingest(const Frame& frame);

  /// Batched WAL-first ingestion, step 1: append every frame, then issue
  /// one fdatasync for the whole batch — the writer thread's amortization
  /// (one sync per queue drain instead of one per frame). Callers apply
  /// the frames afterwards via apply_frame(), acking only once this has
  /// returned (the cumulative Ack needs the durability, not the apply).
  void append_many(const std::vector<Frame>& frames);

  /// Batched ingestion, step 2: feed one already-durable frame to the
  /// controller (identical to the apply half of ingest()).
  DecisionBatchFrame apply_frame(const Frame& frame);

  /// Checkpoint now if the cadence (frames or seconds) says so. Callers
  /// must invoke this only when every durable WAL frame has been applied
  /// *and* is covered by the ack-marks provider — the ingest writer calls
  /// it at batch boundaries, after its per-peer marks advanced.
  void maybe_snapshot();

  /// Unconditional checkpoint; returns false if writing failed (the
  /// previous snapshot survives). Reclaims pre-snapshot segments on
  /// success unless Options::retain_segments.
  bool write_snapshot_now();

  /// Provider of the ingest writer's cumulative-Ack marks, captured into
  /// every snapshot. Called synchronously from maybe_snapshot(), i.e. on
  /// whatever thread ingests — the provider must be safe there.
  void set_ack_marks_provider(
      std::function<std::map<std::string, std::uint64_t>()> provider) {
    marks_provider_ = std::move(provider);
  }

  void close();

  const IncrementalController& controller() const noexcept {
    return controller_;
  }
  const DaemonStats& stats() const noexcept { return stats_; }

  /// Global ordinal of the next WAL frame (== frames durable since
  /// genesis, surviving segment reclamation and restarts).
  std::uint64_t frames_applied() const noexcept { return frames_applied_; }

  /// Install I/O hooks on both logs (nullptr restores the real default);
  /// how tests and the chaos harness inject write faults and fsync
  /// stalls. Call before open().
  void set_io_hooks(WalIoHooks* hooks) noexcept {
    wal_.set_io_hooks(hooks);
    decisions_.set_io_hooks(hooks);
    hooks_ = hooks != nullptr ? hooks : &default_wal_io_hooks();
  }

  /// Latency of the telemetry WAL's most recent fdatasync (seconds); what
  /// the ingestion front-end's stall detector samples after each durable
  /// append.
  double last_fsync_seconds() const { return wal_.last_sync_seconds(); }

  /// Re-fsync the telemetry WAL without appending anything: the shed
  /// detector's recovery probe. While every incoming data frame is being
  /// rejected, nothing would otherwise measure the disk, so the ingest
  /// writer probes before each shed rejection and recovers the moment a
  /// probe comes back under the recovery threshold.
  void probe_wal() { wal_.sync(); }

 private:
  DecisionBatchFrame apply(const Frame& frame, bool emit);

  ControllerConfig config_;
  Options options_;
  std::uint64_t fleet_hash_ = 0;
  IncrementalController controller_;
  SegmentedFrameLog wal_;
  FrameLog decisions_;  ///< never segmented: replay identity needs it whole
  WalIoHooks* hooks_ = &default_wal_io_hooks();
  std::size_t batches_skipped_ = 0;  ///< recovered batches left to skip
  std::uint64_t frames_applied_ = 0;  ///< global frame ordinal since genesis
  std::uint64_t batches_total_ = 0;   ///< batches emitted since genesis
  std::uint64_t last_snapshot_frames_ = 0;
  double last_snapshot_time_ = 0.0;
  std::uint64_t shutdowns_applied_ = 0;  ///< Shutdown frames since genesis
  std::function<std::map<std::string, std::uint64_t>()> marks_provider_;
  DaemonStats stats_;
};

/// Replay a recorded WAL (single file or segment chain) end to end,
/// writing (or with resume, completing) the decision log at
/// `decisions_path`. The input WAL is opened read-only and never modified.
/// Throws std::runtime_error when the WAL cannot be read, was recorded for
/// a different fleet configuration, or its head segments were reclaimed (a
/// cold replay needs the full chain; use --keep-segments when recording).
DaemonStats replay_wal(const std::string& wal_path,
                       const std::string& decisions_path,
                       const ControllerConfig& config, bool resume,
                       bool durable = true);

}  // namespace vmcw::service
