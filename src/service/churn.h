// Deterministic churn generator: synthetic telemetry streams for the
// daemon's tests, benches and CI smoke runs.
//
// Produces the frame sequence a fleet of collection agents would emit over
// `ticks` consolidation intervals: an initial VM population, per-tick
// demand samples (diurnal base + per-VM noise), Poisson-ish arrivals,
// random departures, optional agent blackouts (to drive the controller's
// degraded mode), and one Flush per tick. All randomness forks from a
// single root Rng(seed), so the same options always produce the same
// frames — and therefore, through the daemon, the same decision log.
#pragma once

#include <cstdint>
#include <vector>

#include "service/controller.h"
#include "service/protocol.h"

namespace vmcw::service {

struct ChurnOptions {
  std::size_t agents = 8;        ///< telemetry collectors, round-robin VMs
  std::size_t initial_vms = 48;  ///< population arriving at tick 1
  std::size_t ticks = 24;
  std::size_t apps = 6;  ///< replica-group labels drawn per arrival
  double arrivals_per_tick = 1.0;
  double departure_prob = 0.01;  ///< per live VM per tick
  /// Per agent per tick: probability its delta is dropped (simulated
  /// collector blackout). With stale_after exceeded this puts the
  /// controller in degraded mode.
  double blackout_prob = 0.0;
  /// Mean demand as a fraction of one pool host's capacity.
  double mean_host_fraction = 0.12;
  std::uint64_t seed = 1;
};

/// The full frame stream: Hello (carrying fleet_config_hash(config)),
/// then per tick Heartbeat / arrivals / departures / telemetry deltas /
/// Flush, then Shutdown.
std::vector<Frame> generate_churn(const ChurnOptions& options,
                                  const ControllerConfig& config);

}  // namespace vmcw::service
