// Supervision policy: the decision core of tools/vmcw_supervisor.
//
// The supervisor binary forks the daemon, watches its exit status and its
// liveness heartbeat (the ingest server's health file), and restarts it on
// failure. Everything that *decides* — how long to back off, when the
// restart storm trips the circuit breaker, when a silent daemon counts as
// hung — lives here, clock-injected and pure, so the whole state machine
// is unit-testable without processes or sleeps and stays inside the
// determinism contract's static layer (no wall-clock tokens; the binary
// supplies real time, tests supply a virtual one).
//
// State machine (DESIGN.md §9):
//
//   running --exit--> backoff --(delay)--> running
//      |                 ^
//      | hang (no        | on_exit: delay = min(cap, base * 2^failures)
//      | heartbeat       |
//      | progress)       +--> open (circuit breaker): too many exits
//      v                      inside the storm window; the supervisor
//   killed (counts            stops restarting and reports instead of
//   as an exit)               melting the machine with a crash loop.
//
// on_progress() marks forward progress (heartbeat counter advanced) and
// resets the consecutive-failure count, so a daemon that crashes daily
// does not inherit the backoff of one that crashes per second.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace vmcw::service {

struct SupervisorOptions {
  double backoff_base_seconds = 0.05;  ///< first restart delay
  double backoff_cap_seconds = 2.0;    ///< delay ceiling
  /// This many exits inside the storm window opens the circuit breaker.
  std::size_t storm_restarts = 10;
  double storm_window_seconds = 30.0;
  /// Heartbeat silence (no on_progress) after which a live process counts
  /// as hung and should be killed; 0 disables the watchdog.
  double hang_after_seconds = 30.0;
};

class SupervisorPolicy {
 public:
  explicit SupervisorPolicy(SupervisorOptions options);

  /// The supervised process exited (crash, kill, or hang-kill) at time
  /// `now`. Returns the backoff to sleep before restarting, or nullopt
  /// when the restart storm opened the circuit breaker — the caller must
  /// stop restarting.
  std::optional<double> on_exit(double now);

  /// The heartbeat advanced at time `now`: the daemon is alive and doing
  /// work. Resets the consecutive-failure backoff.
  void on_progress(double now);

  /// Is a process whose last heartbeat progress was at `last_progress`
  /// hung as of `now`?
  bool hung(double now, double last_progress) const noexcept;

  bool circuit_open() const noexcept { return circuit_open_; }
  std::size_t exits() const noexcept { return exits_; }
  std::size_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  SupervisorOptions options_;
  std::vector<double> recent_exits_;  ///< exit times inside the storm window
  std::size_t exits_ = 0;
  std::size_t consecutive_failures_ = 0;
  bool circuit_open_ = false;
};

}  // namespace vmcw::service
