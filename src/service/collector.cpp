#include "service/collector.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>
#include <stdexcept>
#include <utility>

#include "runtime/wire.h"

namespace vmcw::service {

namespace {

using wire::ByteWriter;

std::vector<std::uint8_t> envelope(std::uint64_t seq, const Frame& frame) {
  ByteWriter w;
  w.u64(seq);
  std::vector<std::uint8_t> bytes = w.bytes();
  const std::vector<std::uint8_t> body = encode_frame(frame);
  bytes.insert(bytes.end(), body.begin(), body.end());
  return bytes;
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// write_all for sockets: MSG_NOSIGNAL so a server that quarantined this
// connection (and closed it) surfaces as EPIPE — a reconnect — instead of
// a fatal SIGPIPE.
bool send_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    done += static_cast<std::size_t>(n);
  }
  return true;
}

void backoff_sleep(std::uint64_t attempt, const CollectorOptions& options) {
  const std::uint64_t ms = reconnect_backoff_ms(
      attempt, options.backoff_base_ms, options.backoff_cap_ms);
  if (ms > 0) ::usleep(static_cast<useconds_t>(ms * 1000));
}

}  // namespace

std::uint64_t reconnect_backoff_ms(std::uint64_t attempt,
                                   std::uint64_t base_ms,
                                   std::uint64_t cap_ms) noexcept {
  if (base_ms == 0) return 0;
  if (attempt >= 63) return cap_ms;
  const std::uint64_t scaled = base_ms << attempt;
  if ((scaled >> attempt) != base_ms) return cap_ms;  // overflowed
  return std::min(scaled, cap_ms);
}

CollectorClient::CollectorClient(CollectorOptions options,
                                 TransportFaults* faults)
    : options_(std::move(options)), faults_(faults) {}

CollectorClient::~CollectorClient() {
  if (fd_ >= 0) ::close(fd_);
}

CollectorStats CollectorClient::run(const std::vector<Frame>& frames) {
  CollectorStats stats;
  const std::uint64_t total = frames.size();

  // Coalescing mutates queued (never-sent) frames, so it works on a copy.
  const bool coalesce = options_.coalesce_telemetry;
  std::vector<Frame> stream;
  if (coalesce) stream.assign(frames.begin(), frames.end());

  // Messages are sequenced up front: frame i travels as seq i+1, always,
  // so a retransmission is byte-identical to the original send and the
  // server's cumulative ack is a plain index into this stream.
  std::vector<std::vector<std::uint8_t>> messages;
  messages.reserve(frames.size());
  for (std::uint64_t i = 0; i < total; ++i)
    messages.push_back(envelope(i + 1, coalesce ? stream[i] : frames[i]));

  HelloFrame hello;
  hello.fleet_hash = options_.fleet_hash;
  hello.peer = options_.peer;
  const std::vector<std::uint8_t> hello_message = envelope(0, hello);

  std::uint64_t acked = 0;     // cumulative: messages 1..acked are durable
  std::uint64_t cursor = 0;    // next message index to send on this conn
  std::uint64_t max_sent = 0;  // highest seq ever written (retransmit stat)
  std::uint64_t wire_count = 0;  // fault-plan coordinate
  std::size_t attempt = 0;       // consecutive failures; progress resets
  bool hello_acked = false;
  bool connected_before = false;
  std::vector<std::uint8_t> respbuf;

  // Write one message, letting the fault hooks corrupt, split, or cut the
  // connection. Returns false when the connection is no longer usable.
  const auto send_message = [&](const std::vector<std::uint8_t>& bytes) {
    std::vector<std::uint8_t> out = bytes;
    const std::uint64_t m = wire_count++;
    if (faults_ != nullptr && faults_->corrupt_message(m) && !out.empty()) {
      out[faults_->corrupt_byte(m, out.size()) % out.size()] ^= 0xff;
      ++stats.faults_injected;
    }
    bool ok = true;
    if (faults_ != nullptr && faults_->split_write(m) && out.size() >= 2) {
      const std::size_t at =
          std::clamp<std::size_t>(faults_->split_point(m, out.size()), 1,
                                  out.size() - 1);
      ok = send_all(fd_, out.data(), at) &&
           send_all(fd_, out.data() + at, out.size() - at);
      ++stats.faults_injected;
    } else {
      ok = send_all(fd_, out.data(), out.size());
    }
    ++stats.messages_sent;
    if (faults_ != nullptr && faults_->disconnect_after(m)) {
      ++stats.faults_injected;
      return false;
    }
    return ok;
  };

  // Merge superseded telemetry in the unsent backlog [max_sent, total):
  // scanning newest-first, a VM's first sighting wins and every older
  // queued sample for it is dropped, then the touched messages re-encode.
  // Frames at or below max_sent are never rewritten — a resend must stay
  // byte-identical for the server's crash-recovery dedup filter.
  const auto coalesce_backlog = [&] {
    if (!coalesce) return;
    std::set<std::uint64_t> seen;
    for (std::uint64_t i = total; i-- > max_sent;) {
      auto* delta = std::get_if<HostTelemetryDeltaFrame>(&stream[i]);
      if (delta == nullptr) continue;
      const std::size_t before = delta->samples.size();
      const auto kept = std::remove_if(
          delta->samples.begin(), delta->samples.end(),
          [&](const VmSample& s) { return !seen.insert(s.vm).second; });
      delta->samples.erase(kept, delta->samples.end());
      if (delta->samples.size() != before) {
        stats.samples_coalesced += before - delta->samples.size();
        messages[i] = envelope(i + 1, stream[i]);
      }
    }
  };

  const auto drop_conn = [&] {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    cursor = acked;  // in-flight messages died with the connection
    hello_acked = false;
    respbuf.clear();
    coalesce_backlog();  // disconnected: the backlog will sit a while
  };

  const auto fail = [&](const char* why) {
    ++attempt;
    if (attempt > options_.max_attempts)
      throw std::runtime_error(std::string("collector: retry budget "
                                           "exhausted: ") +
                               why);
    backoff_sleep(attempt, options_);
  };

  while (acked < total) {
    // -- (re)connect + handshake --------------------------------------
    if (fd_ < 0) {
      fd_ = options_.unix_path.empty() ? connect_tcp(options_.tcp_port)
                                       : connect_unix(options_.unix_path);
      if (fd_ < 0) {
        fail("connect refused");
        continue;
      }
      if (connected_before) ++stats.reconnects;
      connected_before = true;
      if (!send_message(hello_message)) {
        drop_conn();
        fail("hello write failed");
        continue;
      }
    }

    // -- fill the window ----------------------------------------------
    if (hello_acked) {
      bool conn_died = false;
      while (cursor < total && cursor - acked < options_.window) {
        if (cursor + 1 <= max_sent) ++stats.retransmits;
        if (!send_message(messages[cursor])) {
          conn_died = true;
          break;
        }
        ++cursor;
        max_sent = std::max(max_sent, cursor);
      }
      if (conn_died) {
        drop_conn();
        fail("connection lost mid-send");
        continue;
      }
    }

    // -- wait for responses -------------------------------------------
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, options_.response_timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    if (ready <= 0) {
      // Nothing for response_timeout_ms with messages outstanding: the
      // server (or the pipe) is gone; resend from the last ack.
      drop_conn();
      fail("response timeout");
      continue;
    }

    std::uint8_t buf[4096];
    const ssize_t n = ::read(fd_, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      drop_conn();
      fail("connection closed");
      continue;
    }
    respbuf.insert(respbuf.end(), buf, buf + n);

    // -- apply every complete response --------------------------------
    bool backoff_needed = false;
    const char* backoff_why = "";
    std::size_t at = 0;
    while (at < respbuf.size()) {
      DecodedFrame decoded;
      try {
        decoded = decode_frame(respbuf.data() + at, respbuf.size() - at);
      } catch (const std::exception&) {
        break;  // torn response tail: wait for more bytes
      }
      at += decoded.consumed;

      if (const auto* ack = std::get_if<AckFrame>(&decoded.frame)) {
        if (!hello_acked) {
          // The first Ack on a (re)connection is the handshake reply: the
          // server's authoritative durable mark. It can sit *below* what
          // we saw acked before — a daemon restarted from a snapshot whose
          // marks trail our history — and then we must rewind and resend;
          // holding our old mark would loop on out-of-order rejects
          // forever. Resends below the server's true durable point are
          // safe: it re-acks or dedups, never double-appends.
          hello_acked = true;
          const std::uint64_t mark = std::min(ack->seq, total);
          if (mark < acked) {
            ++stats.server_rewinds;
            acked = mark;
          } else if (mark > acked) {
            acked = mark;
            attempt = 0;  // progress: reset the failure budget
          }
          cursor = acked;
          continue;
        }
        if (ack->seq > acked) {
          acked = std::min(ack->seq, total);
          attempt = 0;  // progress: reset the failure budget
        }
        cursor = std::max(cursor, acked);
        continue;
      }
      if (const auto* rej = std::get_if<RejectFrame>(&decoded.frame)) {
        if (reject_is_transient(rej->code)) {
          if (rej->code == RejectCode::kShedding)
            ++stats.shed_backoffs;
          else
            ++stats.transient_rejects;
          // One backoff per burst: a window's worth of rejects rewinds
          // once, then the next round trip retries.
          if (cursor != acked || !backoff_needed) {
            cursor = acked;
            backoff_needed = true;
            backoff_why = to_string(rej->code);
          }
          continue;
        }
        if (rej->code == RejectCode::kCorruptFrame ||
            rej->code == RejectCode::kOversizedFrame) {
          // Framing is lost; the server is closing this connection.
          drop_conn();
          backoff_needed = true;
          backoff_why = to_string(rej->code);
          break;
        }
        throw std::runtime_error(std::string("collector: fatal reject: ") +
                                 to_string(rej->code) +
                                 (rej->detail.empty() ? "" : ": ") +
                                 rej->detail);
      }
      throw std::runtime_error("collector: server sent a non-response frame");
    }
    respbuf.erase(respbuf.begin(),
                  respbuf.begin() + static_cast<std::ptrdiff_t>(
                                        std::min(at, respbuf.size())));
    if (backoff_needed) {
      coalesce_backlog();  // backing off: merge what will wait anyway
      fail(backoff_why);
    }
  }

  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  return stats;
}

std::vector<std::vector<Frame>> partition_stream(
    const std::vector<Frame>& frames, std::size_t collectors,
    std::size_t agents) {
  if (collectors == 0) collectors = 1;
  if (agents == 0) agents = 1;
  std::vector<std::vector<Frame>> parts(collectors);
  std::uint64_t last_tick = 0;

  for (const Frame& frame : frames) {
    std::size_t to = 0;
    bool keep = true;
    std::visit(
        [&](const auto& f) {
          using T = std::decay_t<decltype(f)>;
          if constexpr (std::is_same_v<T, HelloFrame>) {
            keep = false;  // sessions carry their own handshake
          } else if constexpr (std::is_same_v<T, ShutdownFrame>) {
            keep = false;  // each partition ends with its own
            last_tick = std::max(last_tick, f.tick);
          } else if constexpr (std::is_same_v<T, HostTelemetryDeltaFrame>) {
            to = static_cast<std::size_t>(f.agent) % collectors;
            last_tick = std::max(last_tick, f.tick);
          } else if constexpr (std::is_same_v<T, VmArrivalFrame> ||
                               std::is_same_v<T, VmDepartureFrame>) {
            // The churn generator samples VM vm through agent vm % agents
            // (service/churn), so routing by that agent keeps each VM's
            // arrival/telemetry/departure order within one collector.
            to = (static_cast<std::size_t>(f.vm) % agents) % collectors;
            last_tick = std::max(last_tick, f.tick);
          } else {
            to = 0;  // Heartbeat / Flush: the tick spine rides together
            if constexpr (std::is_same_v<T, HeartbeatFrame> ||
                          std::is_same_v<T, FlushFrame>)
              last_tick = std::max(last_tick, f.tick);
          }
        },
        frame);
    if (keep) parts[to].push_back(frame);
  }
  for (std::vector<Frame>& part : parts)
    part.push_back(ShutdownFrame{last_tick});
  return parts;
}

}  // namespace vmcw::service
