// Telemetry write-ahead log: the durable frame stream under the daemon.
//
// The daemon is WAL-first: a frame is appended (and fdatasync'd) *before*
// the controller sees it, so a live session and a replay of its WAL feed
// the controller the exact same frame sequence — which, with a
// deterministic controller, makes live and replay decisions bit-identical.
// The decision log is the same format pointed at the output side: every
// DecisionBatch the controller emits is appended before it is reported, so
// a SIGKILL between any two batches leaves a resumable prefix.
//
// The format extends the sweep-journal idiom (runtime/journal) to an
// open-ended stream: a header binds the file to one fleet configuration
// (magic + version + fleet-config hash), and each record is one protocol
// frame — already kind/length/checksum framed by service/protocol — written
// with a single write(). Recovery at open():
//  - header missing/unreadable or fleet hash mismatch: the log is *stale*
//    (the fleet shape changed); it is truncated and rewritten. Resuming
//    never mixes streams across fleet configurations.
//  - a torn tail (partial frame from a crash, or a checksum mismatch): the
//    tail is truncated away and every intact frame before it is returned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/thread_annotations.h"

namespace vmcw::service {

/// Pluggable file-I/O + clock surface under FrameLog appends. The default
/// implementation is the real thing (::write / ::fdatasync / a monotonic
/// clock); the chaos layer substitutes hooks that inject partial writes,
/// EINTR, write errors and fsync stalls on a deterministic schedule
/// (chaos/io_faults), which is how the ingestion path's WAL-stall shedding
/// is tested without a real slow disk. `now()` is the *only* sanctioned
/// wall-clock read in the service layer (vmcw_lint.conf): it feeds the
/// fsync-latency measurement, which is observational (metrics + the shed
/// watermark) and never reaches decision bytes.
class WalIoHooks {
 public:
  virtual ~WalIoHooks() = default;

  /// write(2) semantics: bytes written, or -1 with errno set. May write
  /// short; FrameLog retries short writes and EINTR.
  virtual long write_some(int fd, const std::uint8_t* data, std::size_t size);

  /// fdatasync(2) semantics: 0 on success, -1 with errno set.
  virtual int sync(int fd);

  /// Monotonic seconds; only used to measure sync() latency.
  virtual double now();
};

/// The process-default hooks instance (real I/O).
WalIoHooks& default_wal_io_hooks();

/// Append-side handle on a frame WAL (telemetry input or decision output).
class FrameLog {
 public:
  /// What open() recovered from an existing log.
  struct Recovery {
    std::vector<Frame> frames;  ///< intact frames, in append order
    bool stale = false;         ///< existing log was for a different fleet
    bool torn_tail = false;     ///< trailing partial/corrupt frame dropped
    std::size_t bytes_discarded = 0;  ///< size of the discarded tail
    /// FNV-1a 64 over the valid byte range (header + intact frames) as
    /// recovered; replaying these bytes reproduces the stream exactly.
    std::uint64_t content_hash = 0;
  };

  FrameLog() = default;
  ~FrameLog();

  FrameLog(const FrameLog&) = delete;
  FrameLog& operator=(const FrameLog&) = delete;

  /// Open (creating if needed) the log at `path` bound to `fleet_hash`.
  /// With `resume`, an existing matching log's intact frames are
  /// recovered; without it — or when the log is stale or unreadable — the
  /// file is rewritten with a fresh header. Throws std::runtime_error only
  /// when the path cannot be created at all.
  Recovery open(const std::string& path, std::uint64_t fleet_hash,
                bool resume) VMCW_EXCLUDES(mutex_);

  bool is_open() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return fd_ >= 0;
  }

  /// Append one frame as a single write(). With `sync` (the default) the
  /// record is fdatasync'd before returning — the WAL-first guarantee;
  /// bulk producers (the churn generator) batch with sync=false and call
  /// sync() once at the end. Interrupted (EINTR) and short writes are
  /// retried; a hard write error closes the log rather than risk a torn
  /// interleave. Every synced append's fsync latency is recorded into
  /// MetricsRegistry ("service.wal_fsync_seconds") and kept readable via
  /// last_sync_seconds() — one measurement shared by the telemetry
  /// sidecars and the ingestion stall detector.
  void append(const Frame& frame, bool sync = true) VMCW_EXCLUDES(mutex_);

  void sync() VMCW_EXCLUDES(mutex_);
  void close() VMCW_EXCLUDES(mutex_);

  /// Install I/O hooks (nullptr restores the real default). Call before
  /// sharing the log across threads; the pointer itself is unguarded.
  void set_io_hooks(WalIoHooks* hooks) noexcept {
    hooks_ = hooks != nullptr ? hooks : &default_wal_io_hooks();
  }

  /// Latency of the most recent fdatasync (seconds); 0 before the first.
  /// The ingestion front-end's WAL-stall detector reads this after every
  /// durable append.
  double last_sync_seconds() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return last_sync_seconds_;
  }

 private:
  void close_locked() VMCW_REQUIRES(mutex_);
  void sync_locked() VMCW_REQUIRES(mutex_);

  mutable Mutex mutex_;
  int fd_ VMCW_GUARDED_BY(mutex_) = -1;
  double last_sync_seconds_ VMCW_GUARDED_BY(mutex_) = 0.0;
  WalIoHooks* hooks_ = &default_wal_io_hooks();
};

/// A recorded WAL, read without modifying the file (replay mode).
struct WalContents {
  std::uint64_t fleet_hash = 0;  ///< binding hash from the header
  std::vector<Frame> frames;     ///< intact frames, in append order
  bool torn_tail = false;        ///< file ends in a partial/corrupt frame
  /// FNV-1a 64 over the valid byte range (header + intact frames).
  std::uint64_t content_hash = 0;
};

/// Read a frame WAL read-only. Throws std::runtime_error when the file
/// cannot be read or its header is not a frame WAL; a torn tail is not an
/// error (the intact prefix is returned with torn_tail set).
WalContents read_frame_log(const std::string& path);

}  // namespace vmcw::service
