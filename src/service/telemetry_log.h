// Telemetry write-ahead log: the durable frame stream under the daemon.
//
// The daemon is WAL-first: a frame is appended (and fdatasync'd) *before*
// the controller sees it, so a live session and a replay of its WAL feed
// the controller the exact same frame sequence — which, with a
// deterministic controller, makes live and replay decisions bit-identical.
// The decision log is the same format pointed at the output side: every
// DecisionBatch the controller emits is appended before it is reported, so
// a SIGKILL between any two batches leaves a resumable prefix.
//
// The format extends the sweep-journal idiom (runtime/journal) to an
// open-ended stream: a header binds the file to one fleet configuration
// (magic + version + fleet-config hash), and each record is one protocol
// frame — already kind/length/checksum framed by service/protocol — written
// with a single write(). Recovery at open():
//  - header missing/unreadable or fleet hash mismatch: the log is *stale*
//    (the fleet shape changed); it is truncated and rewritten. Resuming
//    never mixes streams across fleet configurations.
//  - a torn tail (partial frame from a crash, or a checksum mismatch): the
//    tail is truncated away and every intact frame before it is returned.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/thread_annotations.h"

namespace vmcw::service {

/// Append-side handle on a frame WAL (telemetry input or decision output).
class FrameLog {
 public:
  /// What open() recovered from an existing log.
  struct Recovery {
    std::vector<Frame> frames;  ///< intact frames, in append order
    bool stale = false;         ///< existing log was for a different fleet
    bool torn_tail = false;     ///< trailing partial/corrupt frame dropped
    std::size_t bytes_discarded = 0;  ///< size of the discarded tail
    /// FNV-1a 64 over the valid byte range (header + intact frames) as
    /// recovered; replaying these bytes reproduces the stream exactly.
    std::uint64_t content_hash = 0;
  };

  FrameLog() = default;
  ~FrameLog();

  FrameLog(const FrameLog&) = delete;
  FrameLog& operator=(const FrameLog&) = delete;

  /// Open (creating if needed) the log at `path` bound to `fleet_hash`.
  /// With `resume`, an existing matching log's intact frames are
  /// recovered; without it — or when the log is stale or unreadable — the
  /// file is rewritten with a fresh header. Throws std::runtime_error only
  /// when the path cannot be created at all.
  Recovery open(const std::string& path, std::uint64_t fleet_hash,
                bool resume) VMCW_EXCLUDES(mutex_);

  bool is_open() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return fd_ >= 0;
  }

  /// Append one frame as a single write(). With `sync` (the default) the
  /// record is fdatasync'd before returning — the WAL-first guarantee;
  /// bulk producers (the churn generator) batch with sync=false and call
  /// sync() once at the end.
  void append(const Frame& frame, bool sync = true) VMCW_EXCLUDES(mutex_);

  void sync() VMCW_EXCLUDES(mutex_);
  void close() VMCW_EXCLUDES(mutex_);

 private:
  void close_locked() VMCW_REQUIRES(mutex_);

  mutable Mutex mutex_;
  int fd_ VMCW_GUARDED_BY(mutex_) = -1;
};

/// A recorded WAL, read without modifying the file (replay mode).
struct WalContents {
  std::uint64_t fleet_hash = 0;  ///< binding hash from the header
  std::vector<Frame> frames;     ///< intact frames, in append order
  bool torn_tail = false;        ///< file ends in a partial/corrupt frame
  /// FNV-1a 64 over the valid byte range (header + intact frames).
  std::uint64_t content_hash = 0;
};

/// Read a frame WAL read-only. Throws std::runtime_error when the file
/// cannot be read or its header is not a frame WAL; a torn tail is not an
/// error (the intact prefix is returned with torn_tail set).
WalContents read_frame_log(const std::string& path);

}  // namespace vmcw::service
