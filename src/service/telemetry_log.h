// Telemetry write-ahead log: the durable frame stream under the daemon.
//
// The daemon is WAL-first: a frame is appended (and fdatasync'd) *before*
// the controller sees it, so a live session and a replay of its WAL feed
// the controller the exact same frame sequence — which, with a
// deterministic controller, makes live and replay decisions bit-identical.
// The decision log is the same format pointed at the output side: every
// DecisionBatch the controller emits is appended before it is reported, so
// a SIGKILL between any two batches leaves a resumable prefix.
//
// The format extends the sweep-journal idiom (sweep/journal) to an
// open-ended stream: a header binds the file to one fleet configuration
// (magic + version + fleet-config hash), and each record is one protocol
// frame — already kind/length/checksum framed by service/protocol — written
// with a single write(). Recovery at open():
//  - header missing/unreadable or fleet hash mismatch: the log is *stale*
//    (the fleet shape changed); it is truncated and rewritten. Resuming
//    never mixes streams across fleet configurations.
//  - a torn tail (partial frame from a crash, or a checksum mismatch): the
//    tail is truncated away and every intact frame before it is returned.
//
// Version 2 headers add a base ordinal — the global frame index of the
// file's first record — which is what lets SegmentedFrameLog split one
// logical WAL into sealed segment files (`<base>.segNNNNNN`): the chain is
// validated by base continuity at open, segments older than the newest
// durable snapshot are reclaimable (service/snapshot, DESIGN.md §9), and a
// torn tail is still confined to the newest segment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.h"
#include "util/thread_annotations.h"

namespace vmcw::service {

/// Pluggable file-I/O + clock surface under FrameLog appends. The default
/// implementation is the real thing (::write / ::fdatasync / a monotonic
/// clock); the chaos layer substitutes hooks that inject partial writes,
/// EINTR, write errors and fsync stalls on a deterministic schedule
/// (chaos/io_faults), which is how the ingestion path's WAL-stall shedding
/// is tested without a real slow disk. `now()` is the *only* sanctioned
/// wall-clock read in the service layer (vmcw_lint.conf): it feeds the
/// fsync-latency measurement, which is observational (metrics + the shed
/// watermark) and never reaches decision bytes.
class WalIoHooks {
 public:
  virtual ~WalIoHooks() = default;

  /// write(2) semantics: bytes written, or -1 with errno set. May write
  /// short; FrameLog retries short writes and EINTR.
  virtual long write_some(int fd, const std::uint8_t* data, std::size_t size);

  /// fdatasync(2) semantics: 0 on success, -1 with errno set.
  virtual int sync(int fd);

  /// Monotonic seconds; only used to measure sync() latency.
  virtual double now();
};

/// The process-default hooks instance (real I/O).
WalIoHooks& default_wal_io_hooks();

/// Append-side handle on a frame WAL (telemetry input or decision output).
class FrameLog {
 public:
  /// What open() recovered from an existing log.
  struct Recovery {
    std::vector<Frame> frames;  ///< intact frames, in append order
    bool stale = false;         ///< existing log was for a different fleet
    bool torn_tail = false;     ///< trailing partial/corrupt frame dropped
    std::size_t bytes_discarded = 0;  ///< size of the discarded tail
    /// FNV-1a 64 over the valid byte range (header + intact frames) as
    /// recovered; replaying these bytes reproduces the stream exactly.
    std::uint64_t content_hash = 0;
  };

  FrameLog() = default;
  ~FrameLog();

  FrameLog(const FrameLog&) = delete;
  FrameLog& operator=(const FrameLog&) = delete;

  /// Open (creating if needed) the log at `path` bound to `fleet_hash`.
  /// With `resume`, an existing matching log's intact frames are
  /// recovered; without it — or when the log is stale or unreadable — the
  /// file is rewritten with a fresh header. Throws std::runtime_error only
  /// when the path cannot be created at all. `version` selects the header
  /// layout: 1 is the standalone single-file WAL; 2 stamps `base_ordinal`
  /// (the global index of the file's first frame) for segment-chain files
  /// — SegmentedFrameLog is the only caller that passes 2.
  Recovery open(const std::string& path, std::uint64_t fleet_hash, bool resume,
                std::uint32_t version = 1, std::uint64_t base_ordinal = 0)
      VMCW_EXCLUDES(mutex_);

  bool is_open() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return fd_ >= 0;
  }

  /// Append one frame as a single write(). With `sync` (the default) the
  /// record is fdatasync'd before returning — the WAL-first guarantee;
  /// bulk producers (the churn generator) batch with sync=false and call
  /// sync() once at the end. Interrupted (EINTR) and short writes are
  /// retried; a hard write error closes the log rather than risk a torn
  /// interleave. Every synced append's fsync latency is recorded into
  /// MetricsRegistry ("service.wal_fsync_seconds") and kept readable via
  /// last_sync_seconds() — one measurement shared by the telemetry
  /// sidecars and the ingestion stall detector.
  void append(const Frame& frame, bool sync = true) VMCW_EXCLUDES(mutex_);

  void sync() VMCW_EXCLUDES(mutex_);
  void close() VMCW_EXCLUDES(mutex_);

  /// Install I/O hooks (nullptr restores the real default). Call before
  /// sharing the log across threads; the pointer itself is unguarded.
  void set_io_hooks(WalIoHooks* hooks) noexcept {
    hooks_ = hooks != nullptr ? hooks : &default_wal_io_hooks();
  }

  /// Latency of the most recent fdatasync (seconds); 0 before the first.
  /// The ingestion front-end's WAL-stall detector reads this after every
  /// durable append.
  double last_sync_seconds() const VMCW_EXCLUDES(mutex_) {
    MutexLock lk(mutex_);
    return last_sync_seconds_;
  }

 private:
  void close_locked() VMCW_REQUIRES(mutex_);
  void sync_locked() VMCW_REQUIRES(mutex_);

  mutable Mutex mutex_;
  int fd_ VMCW_GUARDED_BY(mutex_) = -1;
  double last_sync_seconds_ VMCW_GUARDED_BY(mutex_) = 0.0;
  WalIoHooks* hooks_ = &default_wal_io_hooks();
};

/// A recorded WAL, read without modifying the file (replay mode).
struct WalContents {
  std::uint64_t fleet_hash = 0;  ///< binding hash from the header
  std::uint32_t version = 1;     ///< header version (2 = segment file)
  /// Global frame index of frames[0]; always 0 for version-1 files. After
  /// segment reclamation a chain's head base records how many frames of
  /// history were compacted away into the snapshot.
  std::uint64_t base_ordinal = 0;
  std::vector<Frame> frames;  ///< intact frames, in append order
  bool torn_tail = false;     ///< file ends in a partial/corrupt frame
  /// FNV-1a 64 over the valid byte range (header + intact frames).
  std::uint64_t content_hash = 0;
};

/// Read a frame WAL read-only. Throws std::runtime_error when the file
/// cannot be read or its header is not a frame WAL; a torn tail is not an
/// error (the intact prefix is returned with torn_tail set).
WalContents read_frame_log(const std::string& path);

/// Read a logical WAL that may be either a single version-1 file at `path`
/// or a segment chain (`path + ".segNNNNNN"` files). Segments are stitched
/// in base-ordinal order; chain breaks (gap, fleet mismatch, torn tail in
/// a sealed segment) end the stitch there, mirroring what
/// SegmentedFrameLog::open would keep. Throws when nothing readable exists.
WalContents read_segmented_wal(const std::string& path);

/// Path of segment file `index` of the chain rooted at `path`
/// (e.g. "live.wal.seg000003").
std::string segment_path(const std::string& path, std::size_t index);

/// One logical WAL split across sealed, checksummed segment files, plus an
/// active tail segment. With `segment_frames == 0` this is byte-compatible
/// legacy mode: a single version-1 file at `path`, exactly FrameLog.
///
/// Rotation: once the active segment holds `segment_frames` frames, the
/// next append seals it (fdatasync + close) and opens the next segment
/// with a version-2 header carrying the chain's running base ordinal.
/// Retention: reclaim_before(n) unlinks only sealed segments whose entire
/// range is below n — the caller passes the newest durable snapshot's
/// frames_covered, so the active segment and every post-snapshot segment
/// are never deleted (DESIGN.md §9 retention invariant).
///
/// Rotation state is writer-thread-owned like the rest of the append path;
/// the inner FrameLog keeps its own lock for the observational readers
/// (last_sync_seconds).
class SegmentedFrameLog {
 public:
  struct Recovery {
    std::vector<Frame> frames;  ///< intact frames across the kept chain
    bool stale = false;         ///< existing chain was for a different fleet
    bool torn_tail = false;     ///< trailing partial/corrupt frame dropped
    /// Global ordinal of frames[0]; > 0 when pre-snapshot segments were
    /// reclaimed before the crash (the caller needs a snapshot covering at
    /// least this many frames, or recovery must refuse).
    std::uint64_t base_ordinal = 0;
    std::size_t segments = 0;  ///< segment files kept (0 in legacy mode)
  };

  Recovery open(const std::string& path, std::uint64_t fleet_hash, bool resume,
                std::uint64_t segment_frames);

  /// Append one frame, rotating first when the active segment is full.
  void append(const Frame& frame, bool sync = true);
  void sync() { log_.sync(); }
  void close() { log_.close(); }
  bool is_open() const { return log_.is_open(); }
  double last_sync_seconds() const { return log_.last_sync_seconds(); }
  void set_io_hooks(WalIoHooks* hooks) noexcept { log_.set_io_hooks(hooks); }

  /// Global ordinal the next append would get (== total durable frames).
  std::uint64_t next_ordinal() const noexcept {
    return active_base_ + active_count_;
  }

  /// Unlink sealed segments wholly below `ordinal` (never the active one).
  /// Returns how many files were reclaimed.
  std::size_t reclaim_before(std::uint64_t ordinal);

  /// Sealed + active segment files on disk (0 in legacy mode).
  std::size_t segment_count() const noexcept {
    return segment_frames_ == 0 ? 0 : sealed_.size() + 1;
  }

 private:
  struct Segment {
    std::string path;
    std::uint64_t base = 0;
    std::uint64_t frames = 0;
  };

  void rotate();

  FrameLog log_;
  std::string path_;
  std::uint64_t fleet_hash_ = 0;
  std::uint64_t segment_frames_ = 0;  ///< 0 = legacy single-file mode
  std::vector<Segment> sealed_;
  std::size_t active_index_ = 1;
  std::uint64_t active_base_ = 0;
  std::uint64_t active_count_ = 0;
};

}  // namespace vmcw::service
