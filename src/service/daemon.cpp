#include "service/daemon.h"

#include <stdexcept>

namespace vmcw::service {

namespace {

void count_batch(DaemonStats& stats, const DecisionBatchFrame& batch) {
  ++stats.batches;
  if (batch.degraded) ++stats.degraded_ticks;
  for (const Decision& d : batch.decisions) {
    switch (d.action) {
      case DecisionAction::kAdmit:
        ++stats.admits;
        break;
      case DecisionAction::kMigrate:
        ++stats.migrations;
        break;
      case DecisionAction::kHold:
        ++stats.holds;
        break;
    }
  }
}

std::size_t count_batches(const std::vector<Frame>& frames) {
  std::size_t n = 0;
  for (const Frame& frame : frames)
    if (std::holds_alternative<DecisionBatchFrame>(frame)) ++n;
  return n;
}

}  // namespace

Daemon::Daemon(ControllerConfig config, Options options)
    : config_(config),
      options_(std::move(options)),
      fleet_hash_(fleet_config_hash(config_)),
      controller_(std::move(config)) {}

Daemon::OpenResult Daemon::open() {
  OpenResult result;
  FrameLog::Recovery wal =
      wal_.open(options_.wal_path, fleet_hash_, options_.resume);
  const FrameLog::Recovery decisions =
      decisions_.open(options_.decisions_path, fleet_hash_, options_.resume);
  result.wal_stale = wal.stale;
  result.decisions_stale = decisions.stale;
  result.frames_recovered = wal.frames.size();
  result.batches_recovered = count_batches(decisions.frames);

  // Re-apply the recovered input, recomputing every decision batch but
  // appending only the ones the crash lost: the resumed decision log is
  // byte-identical to an uninterrupted run.
  batches_skipped_ = result.batches_recovered;
  for (const Frame& frame : wal.frames) apply(frame, /*emit=*/true);
  result.wal_frames = std::move(wal.frames);
  return result;
}

DecisionBatchFrame Daemon::ingest(const Frame& frame) {
  wal_.append(frame, options_.durable);
  return apply(frame, /*emit=*/true);
}

DecisionBatchFrame Daemon::apply(const Frame& frame, bool emit) {
  ++stats_.frames;
  if (const auto* flush = std::get_if<FlushFrame>(&frame)) {
    DecisionBatchFrame batch = controller_.tick(flush->tick);
    if (batches_skipped_ > 0)
      --batches_skipped_;  // already durable from before the crash
    else if (emit)
      decisions_.append(batch, options_.durable);
    count_batch(stats_, batch);
    return batch;
  }
  controller_.apply(frame);
  return DecisionBatchFrame{};
}

void Daemon::close() {
  wal_.sync();
  decisions_.sync();
  wal_.close();
  decisions_.close();
}

DaemonStats replay_wal(const std::string& wal_path,
                       const std::string& decisions_path,
                       const ControllerConfig& config, bool resume,
                       bool durable) {
  const WalContents wal = read_frame_log(wal_path);
  const std::uint64_t fleet_hash = fleet_config_hash(config);
  if (wal.fleet_hash != fleet_hash)
    throw std::runtime_error(
        "replay_wal: WAL was recorded for a different fleet configuration");

  IncrementalController controller(config);
  FrameLog decisions;
  const FrameLog::Recovery recovered =
      decisions.open(decisions_path, fleet_hash, resume);
  std::size_t skip = count_batches(recovered.frames);

  DaemonStats stats;
  for (const Frame& frame : wal.frames) {
    ++stats.frames;
    if (const auto* flush = std::get_if<FlushFrame>(&frame)) {
      DecisionBatchFrame batch = controller.tick(flush->tick);
      if (skip > 0)
        --skip;
      else
        decisions.append(batch, durable);
      count_batch(stats, batch);
    } else {
      controller.apply(frame);
    }
  }
  decisions.sync();
  decisions.close();
  return stats;
}

}  // namespace vmcw::service
