#include "service/daemon.h"

#include <cstdio>
#include <stdexcept>

#include "service/snapshot.h"

namespace vmcw::service {

namespace {

void count_batch(DaemonStats& stats, const DecisionBatchFrame& batch) {
  ++stats.batches;
  if (batch.degraded) ++stats.degraded_ticks;
  for (const Decision& d : batch.decisions) {
    switch (d.action) {
      case DecisionAction::kAdmit:
        ++stats.admits;
        break;
      case DecisionAction::kMigrate:
        ++stats.migrations;
        break;
      case DecisionAction::kHold:
        ++stats.holds;
        break;
    }
  }
}

std::size_t count_batches(const std::vector<Frame>& frames) {
  std::size_t n = 0;
  for (const Frame& frame : frames)
    if (std::holds_alternative<DecisionBatchFrame>(frame)) ++n;
  return n;
}

}  // namespace

Daemon::Daemon(ControllerConfig config, Options options)
    : config_(config),
      options_(std::move(options)),
      fleet_hash_(fleet_config_hash(config_)),
      controller_(std::move(config)) {}

Daemon::OpenResult Daemon::open() {
  OpenResult result;
  // A fresh (non-resume) open truncates the WAL; a snapshot left over from
  // the previous stream would otherwise look usable against the new chain
  // once it grows past the old coverage, and restore state from the wrong
  // stream. Remove it with the stream it described.
  if (!options_.resume && !options_.snapshot_path.empty())
    std::remove(options_.snapshot_path.c_str());
  SegmentedFrameLog::Recovery wal = wal_.open(
      options_.wal_path, fleet_hash_, options_.resume, options_.segment_frames);
  const FrameLog::Recovery decisions =
      decisions_.open(options_.decisions_path, fleet_hash_, options_.resume);
  result.wal_stale = wal.stale;
  result.decisions_stale = decisions.stale;
  result.batches_recovered = count_batches(decisions.frames);

  // Try the snapshot. A snapshot is usable only if its coverage sits
  // inside what the WAL chain still holds (a snapshot past the chain's end
  // references reclaimed-or-missing segments; one below the chain's base
  // cannot bridge the reclaimed prefix either way) and its controller
  // bytes restore cleanly. Anything else falls back to a full replay —
  // which requires the chain to still start at frame zero.
  std::uint64_t suffix_start = wal.base_ordinal;  // ordinal of wal.frames[0]
  batches_skipped_ = result.batches_recovered;
  frames_applied_ = wal.base_ordinal;
  batches_total_ = 0;
  if (options_.resume && !options_.snapshot_path.empty()) {
    SnapshotData snap;
    const SnapshotStatus status =
        read_snapshot(options_.snapshot_path, fleet_hash_, snap);
    const bool coverage_ok =
        status == SnapshotStatus::kOk &&
        snap.frames_covered >= wal.base_ordinal &&
        snap.frames_covered <= wal.base_ordinal + wal.frames.size() &&
        snap.batches_emitted <= result.batches_recovered;
    if (coverage_ok) {
      wire::ByteReader r(snap.controller_state.data(),
                         snap.controller_state.size());
      try {
        controller_.restore_state(r);
        result.snapshot_loaded = true;
        result.snapshot_frames = snap.frames_covered;
        result.ack_marks = std::move(snap.ack_marks);
        suffix_start = snap.frames_covered;
        frames_applied_ = snap.frames_covered;
        batches_total_ = snap.batches_emitted;
        shutdowns_applied_ = snap.shutdowns_covered;
        batches_skipped_ = result.batches_recovered -
                           static_cast<std::size_t>(snap.batches_emitted);
      } catch (const std::exception&) {
        // restore_state left the controller empty; full replay below.
      }
    }
  }
  if (!result.snapshot_loaded && wal.base_ordinal > 0)
    throw std::runtime_error(
        "Daemon: WAL head was reclaimed and no usable snapshot covers it");

  // Re-apply the recovered suffix, recomputing every decision batch but
  // appending only the ones the crash lost: the resumed decision log is
  // byte-identical to an uninterrupted run.
  const std::size_t skip =
      static_cast<std::size_t>(suffix_start - wal.base_ordinal);
  for (std::size_t i = skip; i < wal.frames.size(); ++i)
    apply(wal.frames[i], /*emit=*/true);
  result.frames_recovered = wal.frames.size() - skip;
  wal.frames.erase(wal.frames.begin(),
                   wal.frames.begin() + static_cast<std::ptrdiff_t>(skip));
  result.wal_frames = std::move(wal.frames);
  result.shutdowns_recovered = shutdowns_applied_;
  last_snapshot_frames_ = frames_applied_;
  last_snapshot_time_ = hooks_->now();
  return result;
}

DecisionBatchFrame Daemon::ingest(const Frame& frame) {
  wal_.append(frame, options_.durable);
  return apply(frame, /*emit=*/true);
}

void Daemon::append_many(const std::vector<Frame>& frames) {
  if (frames.empty()) return;
  for (const Frame& frame : frames) wal_.append(frame, /*sync=*/false);
  if (options_.durable) wal_.sync();
}

DecisionBatchFrame Daemon::apply_frame(const Frame& frame) {
  return apply(frame, /*emit=*/true);
}

DecisionBatchFrame Daemon::apply(const Frame& frame, bool emit) {
  ++stats_.frames;
  ++frames_applied_;
  if (std::holds_alternative<ShutdownFrame>(frame)) ++shutdowns_applied_;
  if (const auto* flush = std::get_if<FlushFrame>(&frame)) {
    DecisionBatchFrame batch = controller_.tick(flush->tick);
    ++batches_total_;
    if (batches_skipped_ > 0)
      --batches_skipped_;  // already durable from before the crash
    else if (emit)
      decisions_.append(batch, options_.durable);
    count_batch(stats_, batch);
    return batch;
  }
  controller_.apply(frame);
  return DecisionBatchFrame{};
}

void Daemon::maybe_snapshot() {
  if (options_.snapshot_path.empty()) return;
  const bool frames_due =
      options_.snapshot_every_frames > 0 &&
      frames_applied_ - last_snapshot_frames_ >= options_.snapshot_every_frames;
  const bool time_due =
      options_.snapshot_every_seconds > 0.0 &&
      hooks_->now() - last_snapshot_time_ >= options_.snapshot_every_seconds;
  if (frames_due || time_due) write_snapshot_now();
}

bool Daemon::write_snapshot_now() {
  if (options_.snapshot_path.empty()) return false;
  SnapshotData snap;
  snap.frames_covered = frames_applied_;
  snap.batches_emitted = batches_total_;
  snap.shutdowns_covered = shutdowns_applied_;
  wire::ByteWriter w;
  controller_.save_state(w);
  snap.controller_state = w.bytes();
  if (marks_provider_) snap.ack_marks = marks_provider_();
  if (!write_snapshot(options_.snapshot_path, fleet_hash_, snap)) return false;
  ++stats_.snapshots_written;
  last_snapshot_frames_ = frames_applied_;
  last_snapshot_time_ = hooks_->now();
  if (!options_.retain_segments)
    stats_.segments_reclaimed += wal_.reclaim_before(frames_applied_);
  return true;
}

void Daemon::close() {
  wal_.sync();
  decisions_.sync();
  wal_.close();
  decisions_.close();
}

DaemonStats replay_wal(const std::string& wal_path,
                       const std::string& decisions_path,
                       const ControllerConfig& config, bool resume,
                       bool durable) {
  const WalContents wal = read_segmented_wal(wal_path);
  const std::uint64_t fleet_hash = fleet_config_hash(config);
  if (wal.fleet_hash != fleet_hash)
    throw std::runtime_error(
        "replay_wal: WAL was recorded for a different fleet configuration");
  if (wal.base_ordinal != 0)
    throw std::runtime_error(
        "replay_wal: WAL head segments were reclaimed; a cold replay needs "
        "the full chain (record with segment retention on)");

  IncrementalController controller(config);
  FrameLog decisions;
  const FrameLog::Recovery recovered =
      decisions.open(decisions_path, fleet_hash, resume);
  std::size_t skip = count_batches(recovered.frames);

  DaemonStats stats;
  for (const Frame& frame : wal.frames) {
    ++stats.frames;
    if (const auto* flush = std::get_if<FlushFrame>(&frame)) {
      DecisionBatchFrame batch = controller.tick(flush->tick);
      if (skip > 0)
        --skip;
      else
        decisions.append(batch, durable);
      count_batch(stats, batch);
    } else {
      controller.apply(frame);
    }
  }
  decisions.sync();
  decisions.close();
  return stats;
}

}  // namespace vmcw::service
