// Incremental placement controller: the deciding core of the daemon.
//
// The batch planners (src/core) re-solve the whole fleet; the controller
// instead keeps resident state — host occupancy, a per-VM demand envelope
// updated online from telemetry deltas — and emits *incremental* decisions
// once per tick (on a Flush frame):
//
//  - arrivals are admitted through the packers' single-VM admission path
//    (core/admission's admit_one — the same code FFD routes groups
//    through), never by re-planning residents;
//  - migrations are proposed only for hosts crossing a threshold: over the
//    utilization bound (contention repair) or below the drain threshold
//    (underutilization drain), via core/admission's repair_and_drain;
//  - everything else holds.
//
// Constraints ride along: each application's replicas compile into
// ConstraintSet domain-spread rules (rack and power-feed, the same affine
// lookup shape topology/spread emits) whenever membership changes, so an
// admission or repair move never violates spread.
//
// Degraded mode: a resident VM whose telemetry is older than `stale_after`
// ticks marks its host degraded — the host is frozen out of admission,
// repair and drain for the tick, the VM gets an explicit hold decision,
// and the batch carries degraded=true. Decisions based on stale demand are
// worse than no decisions.
//
// Determinism: apply()/tick() are sequential over the frame stream; the
// only parallelism is repair_and_drain's per-host threshold classification,
// which writes pre-allocated slots — so the decision sequence is
// bit-identical at any VMCW_THREADS, and (because the daemon is WAL-first)
// identical between a live session and a replay of its WAL.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/constraints.h"
#include "core/host_pool.h"
#include "core/placement.h"
#include "core/settings.h"
#include "hardware/catalog.h"
#include "runtime/wire.h"
#include "service/protocol.h"

namespace vmcw::service {

struct ControllerConfig {
  HostPool pool = HostPool::uniform(hs23_elite_blade());
  /// Capacity bound for admission and repair; headroom above it is the
  /// live-migration reserve, as in dynamic consolidation (Table 3).
  double utilization_bound = 0.8;
  /// Hosts below this normalized load are drain candidates; 0 disables
  /// underutilization drains.
  double drain_below = 0.25;
  /// Telemetry samples per VM kept in the demand envelope (max over the
  /// window sizes the VM for admission and repair).
  std::size_t envelope_window = 12;
  /// A resident VM unseen for more than this many ticks is stale.
  std::uint64_t stale_after = 2;
  /// Spread knobs; compiled into ConstraintSet rules when spread is on.
  FailureDomainSettings domains;
};

/// Binding hash of a fleet configuration: every field that changes what
/// the controller would decide. Hello frames and both WALs carry it, so a
/// recorded stream is never replayed against a different fleet shape.
std::uint64_t fleet_config_hash(const ControllerConfig& config);

class IncrementalController {
 public:
  explicit IncrementalController(ControllerConfig config);

  const ControllerConfig& config() const noexcept { return config_; }

  /// Apply one input frame to resident state. Hello/Heartbeat/Shutdown are
  /// bookkeeping; telemetry updates envelopes; arrivals queue for the next
  /// tick; departures release capacity. Flush frames go to tick() instead.
  void apply(const Frame& frame);

  /// Decide the tick: admissions, stale holds, threshold-triggered repair
  /// and drain migrations, capacity holds. The returned batch is already
  /// applied to resident state (migration decisions are taken as executed
  /// instantly — execution feasibility stays the planners' concern).
  DecisionBatchFrame tick(std::uint64_t now);

  // ---- checkpointing (service/snapshot) ----

  /// Serialize the full resident state — every field tick() reads — into
  /// `w`. A controller restored from these bytes emits byte-identical
  /// decision batches for the same subsequent frame stream; that property
  /// is what makes snapshot+suffix recovery equal to a cold full replay
  /// (tests/test_recovery.cpp pins it at 1/2/8 threads).
  void save_state(wire::ByteWriter& w) const;

  /// Restore state previously written by save_state() against the same
  /// fleet configuration. Throws std::runtime_error on malformed bytes;
  /// the controller is left empty in that case (the caller falls back to
  /// a full WAL replay).
  void restore_state(wire::ByteReader& r);

  // ---- observers (tests and the CLI) ----
  std::size_t resident_vms() const noexcept;
  /// Host of an external VM id; -1 when unknown, departed or unadmitted.
  std::int32_t host_of(std::uint64_t vm) const noexcept;
  std::size_t active_hosts() const;
  bool last_tick_degraded() const noexcept { return degraded_; }

 private:
  struct VmState {
    std::uint64_t id = 0;
    std::string app;
    bool resident = false;  ///< arrived and not departed
    bool admitted = false;  ///< currently holds a host
    std::uint64_t last_seen = 0;  ///< tick of the latest demand sample
    /// Demand ring buffer, newest overwrites oldest past the window.
    std::vector<ResourceVector> window;
    std::size_t window_next = 0;

    ResourceVector envelope() const noexcept;
    void observe(std::uint64_t tick, const ResourceVector& demand,
                 std::size_t window_cap);
  };

  void on_arrival(const VmArrivalFrame& frame);
  void on_departure(const VmDepartureFrame& frame);
  void on_telemetry(const HostTelemetryDeltaFrame& frame);
  /// Recompile spread rules over the resident fleet (called lazily at the
  /// next tick after membership changed).
  void rebuild_constraints();

  ControllerConfig config_;
  std::uint64_t fleet_hash_ = 0;

  std::vector<VmState> vms_;  ///< dense, indices never reused
  /// External VM id -> dense index. Ordered map: admission FIFO and
  /// constraint groups must not depend on hash iteration order.
  std::map<std::uint64_t, std::size_t> index_of_;
  /// Host per dense VM (Placement::kUnplaced when none). Kept as a plain
  /// vector so arrivals append in O(1); tick() materializes a Placement
  /// over it for the admission/repair machinery and writes it back.
  std::vector<std::int32_t> host_of_;
  std::vector<std::size_t> pending_;  ///< dense ids awaiting admission, FIFO
  ConstraintSet constraints_;
  bool constraints_dirty_ = true;
  bool degraded_ = false;
};

}  // namespace vmcw::service
