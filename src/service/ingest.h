// Network ingestion front-end: many collectors, one WAL, one total order.
//
// The daemon core (service/daemon) is WAL-first and strictly sequential;
// this layer puts a socket boundary in front of it without weakening
// either property. An IngestServer accepts framed telemetry from N
// concurrent collectors over Unix-domain and loopback TCP sockets and
// funnels every message through a single writer thread that owns the WAL
// append, the controller apply, and all sequencing decisions. *Arrival*
// order at the sockets is scheduling-dependent; the order the writer
// serializes into the WAL is the system's total order, and a replay of
// that WAL is byte-identical to the live run at any thread count — the
// PR-6 determinism contract, unchanged (DESIGN.md §8).
//
// Wire format, collector -> server: each message is
//
//   seq   u64  per-session sequence number (Hello uses 0)
//   frame ...  one service/protocol frame (kind | length | checksum | payload)
//
// Server -> collector responses are bare Ack / Reject frames. An Ack{s} is
// cumulative — every message with seq <= s is fdatasync'd in the WAL — and
// is the only signal a collector may drop a buffered frame on. A session
// starts with an enveloped Hello (version + fleet hash); the Hello is
// handshake-only and never appended to the WAL.
//
// Robustness model:
//  - torn input (a read ending mid-message) waits for more bytes; corrupt
//    input (checksum/decode failure, or a length field over the frame cap)
//    is quarantined: a typed Reject, the connection dropped, the buffered
//    bytes counted and discarded. Framing is gone, so the stream is too.
//  - a slow writer fills the bounded ingress queue; the poll loop then
//    stops *reading* the offending sockets (backpressure) instead of
//    buffering unboundedly. Collectors block; the WAL never does.
//  - a stalled WAL disk (fsync latency over the shed watermark) flips the
//    server into heartbeat-only shedding: control frames (Heartbeat,
//    Flush, Shutdown) are still ingested — ticks still run, so decision
//    batches carry the degraded marker once telemetry goes stale — while
//    data frames get Reject{kShedding} and are never acked. Acked implies
//    durable, so shedding can never drop an acked frame. While shedding,
//    the writer probes the WAL (an fsync with no append) before each
//    rejection, so recovery needs no cooperating traffic; the recover
//    threshold sits below the shed watermark (hysteresis).
//  - duplicates are safe end to end: re-sent messages (seq <= last ack)
//    are re-acked without re-appending, and across a daemon crash the
//    writer seeds a duplicate filter from the recovered WAL frames, so a
//    collector resending an already-durable frame gets an Ack, not a
//    second WAL record.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "runtime/bounded_queue.h"
#include "service/daemon.h"
#include "util/thread_annotations.h"

namespace vmcw::service {

struct IngestOptions {
  /// Unix-domain listen path ("" = no UDS listener).
  std::string unix_path;
  /// Loopback TCP listen port (-1 = no TCP listener; 0 = ephemeral, read
  /// the bound port back with tcp_port()).
  int tcp_port = -1;

  /// Ingress queue bound: decoded messages in flight between the poll
  /// loop and the WAL writer. The backpressure knob.
  std::size_t queue_capacity = 256;
  /// Hard cap on one frame's length field; a message claiming more is
  /// quarantined without allocating.
  std::size_t max_frame_bytes = std::size_t{16} << 20;

  /// Enter heartbeat-only shedding when the WAL's last fsync took at
  /// least this long (seconds).
  double shed_fsync_seconds = 0.050;
  /// Leave shedding once an fsync comes in at or under this (hysteresis;
  /// must be below the shed watermark).
  double recover_fsync_seconds = 0.010;

  /// Stop serving after this many Shutdown frames were ingested (one per
  /// collector by convention; 0 = serve until stop()).
  std::size_t expected_shutdowns = 1;

  /// Writer batch cap: how many queued messages one WAL append + single
  /// fdatasync may cover (0 = up to the queue capacity). The Ack is
  /// cumulative and deferred past the batch sync, so durability semantics
  /// are unchanged — only the fsync count drops.
  std::size_t max_batch_frames = 0;

  /// Liveness heartbeat file ("" = off): after each writer batch the
  /// server atomically rewrites this file with a monotonic progress
  /// counter. The supervisor's watchdog (tools/vmcw_supervisor) reads it
  /// to distinguish a hung daemon from an idle one.
  std::string health_path;
};

/// Counters over one serve run. Snapshot via IngestServer::stats().
struct IngestStats {
  std::size_t connections_accepted = 0;
  std::size_t messages_ingested = 0;    ///< durable in the WAL and applied
  std::size_t duplicates_dropped = 0;   ///< re-acked without re-appending
  std::size_t rejects_sent = 0;         ///< all codes
  std::size_t corrupt_frames = 0;       ///< quarantined: decode/checksum
  std::size_t oversized_frames = 0;     ///< quarantined: length over cap
  std::size_t bytes_quarantined = 0;    ///< buffered bytes discarded
  std::size_t out_of_order_rejects = 0;
  std::size_t shed_rejects = 0;         ///< data frames refused while shedding
  std::size_t shed_entries = 0;         ///< times shedding engaged
  std::size_t backpressure_stalls = 0;  ///< times a socket's reads paused
  std::size_t shutdowns_seen = 0;
  std::size_t wal_batches = 0;  ///< writer drains: one fdatasync each
};

/// Multi-producer socket front-end over one Daemon. Not copyable; start()
/// spawns the poll and writer threads, wait() joins them.
class IngestServer {
 public:
  IngestServer(Daemon& daemon, IngestOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Bind the listeners, seed the duplicate filter with the frames
  /// recovered by Daemon::open() (empty on a fresh start), seed the
  /// per-peer cumulative-Ack marks from a recovered snapshot's
  /// OpenResult::ack_marks (frames below a mark are re-acked off the mark
  /// — they are no longer in the replayed suffix), and spawn the poll +
  /// writer threads. Also wires this server's marks into the daemon's
  /// snapshot writer. `recovered_shutdowns` (OpenResult::shutdowns_recovered)
  /// counts Shutdown frames durable across the whole recovered stream —
  /// snapshot coverage plus suffix — toward expected_shutdowns: their
  /// collectors were acked and exited, so they will never resend, and a
  /// daemon restarted after ingest completed stops serving immediately
  /// instead of hanging for traffic that cannot arrive. Throws
  /// std::runtime_error when no listener could be bound.
  void start(const std::vector<Frame>& recovered_frames,
             const std::map<std::string, std::uint64_t>& recovered_marks = {},
             std::uint64_t recovered_shutdowns = 0);

  /// Block until the serve run ends: expected_shutdowns Shutdown frames
  /// ingested, or stop() called.
  void wait();

  /// Request an orderly stop from any thread (idempotent).
  void stop();

  /// Bound TCP port (after start(); -1 when no TCP listener).
  int tcp_port() const noexcept { return bound_tcp_port_; }

  IngestStats stats() const VMCW_EXCLUDES(stats_mutex_);

  /// Is the server currently in heartbeat-only shedding?
  bool shedding() const VMCW_EXCLUDES(stats_mutex_);

 private:
  /// What the poll loop hands the writer.
  struct IngressItem {
    enum class Kind : std::uint8_t { kMessage, kGone };
    Kind kind = Kind::kMessage;
    std::uint64_t conn = 0;
    std::uint64_t seq = 0;
    Frame frame;
  };

  /// What the writer hands back for the poll loop to transmit.
  struct Response {
    std::uint64_t conn = 0;
    std::vector<std::uint8_t> bytes;  ///< encoded Ack/Reject frame
    bool close = false;               ///< drop the conn once flushed
  };

  /// Writer-owned per-connection session state. `expected` is pinned to
  /// last_acked + 1 at Hello time — never inferred from an incoming seq,
  /// so a corrupted seq word (the envelope is outside the frame checksum)
  /// can only draw a harmless re-Ack or an out-of-order reject, never
  /// advance the cumulative ack past an undelivered message.
  struct Session {
    std::string peer;
    bool synced = false;  ///< Hello accepted
    std::uint64_t expected = 0;
  };

  /// Poll-thread-owned per-connection transport state.
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> in;
    std::vector<std::uint8_t> out;
    bool paused = false;      ///< reads masked (backpressure)
    bool want_close = false;  ///< close once `out` is flushed
    bool has_stalled = false;
    IngressItem stalled;  ///< decoded but not yet queued (queue full)
  };

  void poll_loop();
  void writer_loop();
  void process_batch(std::vector<IngressItem>& items);
  void respond(std::uint64_t conn, const Frame& frame, bool close);
  void update_shed_state();
  void wake_poll() const noexcept;

  Daemon& daemon_;
  IngestOptions options_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;

  BoundedQueue<IngressItem> queue_;
  std::atomic<bool> stop_{false};

  mutable Mutex response_mutex_;
  std::vector<Response> responses_ VMCW_GUARDED_BY(response_mutex_);

  mutable Mutex stats_mutex_;
  IngestStats stats_ VMCW_GUARDED_BY(stats_mutex_);
  bool shedding_ VMCW_GUARDED_BY(stats_mutex_) = false;

  // Writer-owned (no lock: only writer_loop touches these after start()).
  std::map<std::uint64_t, Session> sessions_;
  std::map<std::string, std::uint64_t> last_acked_;
  std::map<std::uint64_t, std::size_t> dedup_;  ///< frame hash -> count
  std::size_t shutdowns_seen_ = 0;
  std::uint64_t batches_processed_ = 0;  ///< health-file progress counter

  std::thread poll_thread_;
  std::thread writer_thread_;
  bool started_ = false;
};

}  // namespace vmcw::service
