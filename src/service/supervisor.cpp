#include "service/supervisor.h"

#include <algorithm>
#include <utility>

namespace vmcw::service {

SupervisorPolicy::SupervisorPolicy(SupervisorOptions options)
    : options_(std::move(options)) {}

std::optional<double> SupervisorPolicy::on_exit(double now) {
  ++exits_;
  if (circuit_open_) return std::nullopt;

  // The storm window slides: only exits newer than (now - window) count
  // toward the breaker, so a long-lived daemon's ancient crashes never
  // accumulate into a trip.
  const double horizon = now - options_.storm_window_seconds;
  recent_exits_.erase(
      std::remove_if(recent_exits_.begin(), recent_exits_.end(),
                     [&](double t) { return t < horizon; }),
      recent_exits_.end());
  recent_exits_.push_back(now);
  if (options_.storm_restarts > 0 &&
      recent_exits_.size() >= options_.storm_restarts) {
    circuit_open_ = true;
    return std::nullopt;
  }

  // Capped exponential backoff over *consecutive* failures; on_progress
  // resets the exponent, so the schedule keys on crash cadence, not
  // lifetime crash count.
  double delay = options_.backoff_base_seconds;
  for (std::size_t i = 0;
       i < consecutive_failures_ && delay < options_.backoff_cap_seconds; ++i)
    delay *= 2.0;
  ++consecutive_failures_;
  return std::min(delay, options_.backoff_cap_seconds);
}

void SupervisorPolicy::on_progress(double now) {
  (void)now;
  consecutive_failures_ = 0;
}

bool SupervisorPolicy::hung(double now, double last_progress) const noexcept {
  return options_.hang_after_seconds > 0.0 &&
         now - last_progress >= options_.hang_after_seconds;
}

}  // namespace vmcw::service
