#include "service/telemetry_log.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "runtime/telemetry.h"
#include "runtime/wire.h"

namespace vmcw::service {

namespace {

using wire::ByteWriter;
using wire::fnv1a64;
using wire::load_u32;
using wire::load_u64;
using wire::read_all;
using wire::write_all;

constexpr char kMagic[8] = {'V', 'M', 'C', 'W', 'T', 'W', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
// magic + version + fleet-config hash.
constexpr std::size_t kHeaderSize = 8 + 4 + 8;

/// Scan the intact frame prefix of a WAL byte image. Returns the offset of
/// the first byte past the last intact frame; frames decoded on the way
/// are appended to `frames`.
std::size_t scan_frames(const std::vector<std::uint8_t>& bytes,
                        std::vector<Frame>& frames) {
  std::size_t off = kHeaderSize;
  while (off < bytes.size()) {
    try {
      DecodedFrame d = decode_frame(bytes.data() + off, bytes.size() - off);
      frames.push_back(std::move(d.frame));
      off += d.consumed;
    } catch (const std::exception&) {
      break;  // a frame decodes cleanly or it is the torn tail
    }
  }
  return off;
}

bool header_matches(const std::vector<std::uint8_t>& bytes,
                    std::uint64_t fleet_hash) {
  return bytes.size() >= kHeaderSize &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0 &&
         load_u32(bytes.data() + 8) == kVersion &&
         load_u64(bytes.data() + 12) == fleet_hash;
}

std::vector<std::uint8_t> encode_header(std::uint64_t fleet_hash) {
  ByteWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(kVersion);
  header.u64(fleet_hash);
  return header.bytes();
}

/// write_all through the hook surface: retries EINTR and short writes the
/// same way wire::write_all does for the real fd path.
bool write_all_hooked(WalIoHooks& hooks, int fd, const std::uint8_t* data,
                      std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const long n = hooks.write_some(fd, data + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fdatasync through the hook surface, retrying EINTR.
int sync_hooked(WalIoHooks& hooks, int fd) {
  int rc;
  do {
    rc = hooks.sync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

}  // namespace

long WalIoHooks::write_some(int fd, const std::uint8_t* data,
                            std::size_t size) {
  return static_cast<long>(::write(fd, data, size));
}

int WalIoHooks::sync(int fd) { return ::fdatasync(fd); }

double WalIoHooks::now() {
  // The one sanctioned wall-clock read of the service layer
  // (vmcw_lint.conf): it times fsyncs for the observational latency
  // metric and the ingest stall detector, never decision bytes.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WalIoHooks& default_wal_io_hooks() {
  static WalIoHooks hooks;  // stateless: real write/fdatasync/clock
  return hooks;
}

FrameLog::~FrameLog() { close(); }

void FrameLog::close() {
  MutexLock lk(mutex_);
  close_locked();
}

void FrameLog::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameLog::Recovery FrameLog::open(const std::string& path,
                                  std::uint64_t fleet_hash, bool resume) {
  // open() runs before the log is shared with other threads, but holding
  // the lock throughout keeps fd_'s guard unconditional.
  MutexLock lk(mutex_);
  close_locked();
  Recovery rec;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw std::runtime_error("FrameLog: cannot open " + path);

  std::vector<std::uint8_t> bytes;
  const bool readable = read_all(fd_, bytes);

  if (resume && readable && header_matches(bytes, fleet_hash)) {
    const std::size_t off = scan_frames(bytes, rec.frames);
    if (off < bytes.size()) {
      rec.torn_tail = true;
      rec.bytes_discarded = bytes.size() - off;
      if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
        // Cannot trim the torn tail: appending would interleave with
        // garbage, so fall back to a fresh log.
        rec.frames.clear();
        rec.torn_tail = false;
        rec.bytes_discarded = 0;
        goto fresh;
      }
    }
    rec.content_hash = fnv1a64(bytes.data(), off);
    ::lseek(fd_, 0, SEEK_END);
    return rec;
  }

fresh:
  // Not resuming, no log yet, or a stale one (the fleet shape changed
  // since it was written): start clean. Stale frames are never mixed in.
  rec.stale = resume && readable && !bytes.empty();
  rec.frames.clear();
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    close_locked();
    throw std::runtime_error("FrameLog: cannot rewrite " + path);
  }
  const std::vector<std::uint8_t> header = encode_header(fleet_hash);
  if (!write_all(fd_, header.data(), header.size())) {
    close_locked();
    throw std::runtime_error("FrameLog: cannot write header of " + path);
  }
  ::fdatasync(fd_);
  rec.content_hash = fnv1a64(header.data(), header.size());
  return rec;
}

void FrameLog::append(const Frame& frame, bool sync) {
  const std::vector<std::uint8_t> record = encode_frame(frame);
  MutexLock lk(mutex_);
  if (fd_ < 0) return;
  if (!write_all_hooked(*hooks_, fd_, record.data(), record.size())) {
    // A failed append (disk full, injected write error) must not corrupt
    // what is already durable: stop logging rather than interleave a
    // partial frame.
    close_locked();
    return;
  }
  if (sync) sync_locked();
}

void FrameLog::sync_locked() {
  if (fd_ < 0) return;
  const double start = hooks_->now();
  sync_hooked(*hooks_, fd_);
  const double elapsed = hooks_->now() - start;
  last_sync_seconds_ = elapsed;
  // One measurement, two consumers: the telemetry sidecars and the
  // ingestion front-end's WAL-stall detector (service/ingest).
  MetricsRegistry::global().observe("service.wal_fsync_seconds", elapsed);
}

void FrameLog::sync() {
  MutexLock lk(mutex_);
  sync_locked();
}

WalContents read_frame_log(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error("read_frame_log: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  const bool readable = read_all(fd, bytes);
  ::close(fd);
  if (!readable)
    throw std::runtime_error("read_frame_log: cannot read " + path);
  if (bytes.size() < kHeaderSize ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0 ||
      load_u32(bytes.data() + 8) != kVersion)
    throw std::runtime_error("read_frame_log: not a frame WAL: " + path);

  WalContents wal;
  wal.fleet_hash = load_u64(bytes.data() + 12);
  const std::size_t off = scan_frames(bytes, wal.frames);
  wal.torn_tail = off < bytes.size();
  wal.content_hash = fnv1a64(bytes.data(), off);
  return wal;
}

}  // namespace vmcw::service
