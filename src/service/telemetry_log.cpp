#include "service/telemetry_log.h"

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "runtime/telemetry.h"
#include "runtime/wire.h"

namespace vmcw::service {

namespace {

using wire::ByteWriter;
using wire::fnv1a64;
using wire::load_u32;
using wire::load_u64;
using wire::read_all;
using wire::write_all;

constexpr char kMagic[8] = {'V', 'M', 'C', 'W', 'T', 'W', 'L', '1'};
// magic + version + fleet-config hash; version 2 appends the base ordinal.
constexpr std::size_t kHeaderSizeV1 = 8 + 4 + 8;
constexpr std::size_t kHeaderSizeV2 = kHeaderSizeV1 + 8;

std::size_t header_size(std::uint32_t version) {
  return version == 2 ? kHeaderSizeV2 : kHeaderSizeV1;
}

/// Scan the intact frame prefix of a WAL byte image starting at `off`.
/// Returns the offset of the first byte past the last intact frame; frames
/// decoded on the way are appended to `frames`.
std::size_t scan_frames(const std::vector<std::uint8_t>& bytes,
                        std::vector<Frame>& frames, std::size_t off) {
  while (off < bytes.size()) {
    try {
      DecodedFrame d = decode_frame(bytes.data() + off, bytes.size() - off);
      frames.push_back(std::move(d.frame));
      off += d.consumed;
    } catch (const std::exception&) {
      break;  // a frame decodes cleanly or it is the torn tail
    }
  }
  return off;
}

bool header_matches(const std::vector<std::uint8_t>& bytes,
                    std::uint64_t fleet_hash, std::uint32_t version,
                    std::uint64_t base_ordinal) {
  if (bytes.size() < header_size(version) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0 ||
      load_u32(bytes.data() + 8) != version ||
      load_u64(bytes.data() + 12) != fleet_hash)
    return false;
  return version != 2 || load_u64(bytes.data() + 20) == base_ordinal;
}

std::vector<std::uint8_t> encode_header(std::uint64_t fleet_hash,
                                        std::uint32_t version,
                                        std::uint64_t base_ordinal) {
  ByteWriter header;
  for (const char c : kMagic) header.u8(static_cast<std::uint8_t>(c));
  header.u32(version);
  header.u64(fleet_hash);
  if (version == 2) header.u64(base_ordinal);
  return header.bytes();
}

/// write_all through the hook surface: retries EINTR and short writes the
/// same way wire::write_all does for the real fd path.
bool write_all_hooked(WalIoHooks& hooks, int fd, const std::uint8_t* data,
                      std::size_t size) {
  std::size_t off = 0;
  while (off < size) {
    const long n = hooks.write_some(fd, data + off, size - off);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// fdatasync through the hook surface, retrying EINTR.
int sync_hooked(WalIoHooks& hooks, int fd) {
  int rc;
  do {
    rc = hooks.sync(fd);
  } while (rc != 0 && errno == EINTR);
  return rc;
}

}  // namespace

long WalIoHooks::write_some(int fd, const std::uint8_t* data,
                            std::size_t size) {
  return static_cast<long>(::write(fd, data, size));
}

int WalIoHooks::sync(int fd) { return ::fdatasync(fd); }

double WalIoHooks::now() {
  // The one sanctioned wall-clock read of the service layer
  // (vmcw_lint.conf): it times fsyncs for the observational latency
  // metric and the ingest stall detector, never decision bytes.
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

WalIoHooks& default_wal_io_hooks() {
  static WalIoHooks hooks;  // stateless: real write/fdatasync/clock
  return hooks;
}

FrameLog::~FrameLog() { close(); }

void FrameLog::close() {
  MutexLock lk(mutex_);
  close_locked();
}

void FrameLog::close_locked() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

FrameLog::Recovery FrameLog::open(const std::string& path,
                                  std::uint64_t fleet_hash, bool resume,
                                  std::uint32_t version,
                                  std::uint64_t base_ordinal) {
  // open() runs before the log is shared with other threads, but holding
  // the lock throughout keeps fd_'s guard unconditional.
  MutexLock lk(mutex_);
  close_locked();
  Recovery rec;
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) throw std::runtime_error("FrameLog: cannot open " + path);

  std::vector<std::uint8_t> bytes;
  const bool readable = read_all(fd_, bytes);

  if (resume && readable &&
      header_matches(bytes, fleet_hash, version, base_ordinal)) {
    const std::size_t off = scan_frames(bytes, rec.frames, header_size(version));
    if (off < bytes.size()) {
      rec.torn_tail = true;
      rec.bytes_discarded = bytes.size() - off;
      if (::ftruncate(fd_, static_cast<off_t>(off)) != 0) {
        // Cannot trim the torn tail: appending would interleave with
        // garbage, so fall back to a fresh log.
        rec.frames.clear();
        rec.torn_tail = false;
        rec.bytes_discarded = 0;
        goto fresh;
      }
    }
    rec.content_hash = fnv1a64(bytes.data(), off);
    ::lseek(fd_, 0, SEEK_END);
    return rec;
  }

fresh:
  // Not resuming, no log yet, or a stale one (the fleet shape changed
  // since it was written): start clean. Stale frames are never mixed in.
  rec.stale = resume && readable && !bytes.empty();
  rec.frames.clear();
  if (::ftruncate(fd_, 0) != 0 || ::lseek(fd_, 0, SEEK_SET) < 0) {
    close_locked();
    throw std::runtime_error("FrameLog: cannot rewrite " + path);
  }
  const std::vector<std::uint8_t> header =
      encode_header(fleet_hash, version, base_ordinal);
  if (!write_all(fd_, header.data(), header.size())) {
    close_locked();
    throw std::runtime_error("FrameLog: cannot write header of " + path);
  }
  ::fdatasync(fd_);
  rec.content_hash = fnv1a64(header.data(), header.size());
  return rec;
}

void FrameLog::append(const Frame& frame, bool sync) {
  const std::vector<std::uint8_t> record = encode_frame(frame);
  MutexLock lk(mutex_);
  if (fd_ < 0) return;
  if (!write_all_hooked(*hooks_, fd_, record.data(), record.size())) {
    // A failed append (disk full, injected write error) must not corrupt
    // what is already durable: stop logging rather than interleave a
    // partial frame.
    close_locked();
    return;
  }
  if (sync) sync_locked();
}

void FrameLog::sync_locked() {
  if (fd_ < 0) return;
  const double start = hooks_->now();
  sync_hooked(*hooks_, fd_);
  const double elapsed = hooks_->now() - start;
  last_sync_seconds_ = elapsed;
  // One measurement, two consumers: the telemetry sidecars and the
  // ingestion front-end's WAL-stall detector (service/ingest).
  MetricsRegistry::global().observe("service.wal_fsync_seconds", elapsed);
}

void FrameLog::sync() {
  MutexLock lk(mutex_);
  sync_locked();
}

WalContents read_frame_log(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw std::runtime_error("read_frame_log: cannot open " + path);
  std::vector<std::uint8_t> bytes;
  const bool readable = read_all(fd, bytes);
  ::close(fd);
  if (!readable)
    throw std::runtime_error("read_frame_log: cannot read " + path);
  if (bytes.size() < kHeaderSizeV1 ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
    throw std::runtime_error("read_frame_log: not a frame WAL: " + path);
  const std::uint32_t version = load_u32(bytes.data() + 8);
  if ((version != 1 && version != 2) || bytes.size() < header_size(version))
    throw std::runtime_error("read_frame_log: not a frame WAL: " + path);

  WalContents wal;
  wal.version = version;
  wal.fleet_hash = load_u64(bytes.data() + 12);
  if (version == 2) wal.base_ordinal = load_u64(bytes.data() + 20);
  const std::size_t off = scan_frames(bytes, wal.frames, header_size(version));
  wal.torn_tail = off < bytes.size();
  wal.content_hash = fnv1a64(bytes.data(), off);
  return wal;
}

std::string segment_path(const std::string& path, std::size_t index) {
  char suffix[24];
  std::snprintf(suffix, sizeof(suffix), ".seg%06zu", index);
  return path + suffix;
}

namespace {

/// Segment files of the chain rooted at `path`, sorted by index. Paths are
/// rebuilt through segment_path so they compare equal to what the log
/// itself would create or unlink.
std::vector<std::pair<std::size_t, std::string>> list_segments(
    const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string stem =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const std::string prefix = stem + ".seg";

  std::vector<std::pair<std::size_t, std::string>> out;
  DIR* d = ::opendir(dir.empty() ? "/" : dir.c_str());
  if (d == nullptr) return out;
  while (const dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name.size() != prefix.size() + 6 ||
        name.compare(0, prefix.size(), prefix) != 0)
      continue;
    std::size_t index = 0;
    bool digits = true;
    for (std::size_t i = prefix.size(); i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        digits = false;
        break;
      }
      index = index * 10 + static_cast<std::size_t>(name[i] - '0');
    }
    if (digits && index > 0) out.emplace_back(index, segment_path(path, index));
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

/// Combine per-segment content hashes into one chain hash (order-sensitive).
std::uint64_t chain_hash(std::uint64_t running, std::uint64_t segment) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) bytes[i] = (segment >> (8 * i)) & 0xff;
  return fnv1a64(bytes, sizeof(bytes), running);
}

}  // namespace

WalContents read_segmented_wal(const std::string& path) {
  const auto files = list_segments(path);
  if (files.empty()) return read_frame_log(path);

  WalContents out;
  bool any = false;
  std::size_t expected_index = 0;
  std::uint64_t expected_base = 0;
  for (const auto& [index, file] : files) {
    WalContents seg;
    try {
      seg = read_frame_log(file);
    } catch (const std::exception&) {
      break;
    }
    if (seg.version != 2) break;
    if (!any) {
      out.fleet_hash = seg.fleet_hash;
      out.version = 2;
      out.base_ordinal = seg.base_ordinal;
      out.content_hash = 1469598103934665603ull;
    } else if (seg.fleet_hash != out.fleet_hash || index != expected_index ||
               seg.base_ordinal != expected_base) {
      break;  // gap, foreign file or base discontinuity: the chain ends here
    }
    any = true;
    expected_index = index + 1;
    expected_base = seg.base_ordinal + seg.frames.size();
    out.frames.insert(out.frames.end(),
                      std::make_move_iterator(seg.frames.begin()),
                      std::make_move_iterator(seg.frames.end()));
    out.content_hash = chain_hash(out.content_hash, seg.content_hash);
    out.torn_tail = seg.torn_tail;
    if (seg.torn_tail) break;  // a torn segment is the tail by definition
  }
  if (!any)
    throw std::runtime_error("read_segmented_wal: no readable segments: " +
                             path);
  return out;
}

SegmentedFrameLog::Recovery SegmentedFrameLog::open(
    const std::string& path, std::uint64_t fleet_hash, bool resume,
    std::uint64_t segment_frames) {
  log_.close();
  path_ = path;
  fleet_hash_ = fleet_hash;
  segment_frames_ = segment_frames;
  sealed_.clear();
  active_index_ = 1;
  active_base_ = 0;
  active_count_ = 0;

  Recovery rec;
  if (segment_frames_ == 0) {
    // Legacy single-file mode: byte-compatible with every pre-segmentation
    // WAL on disk and every test that reads one.
    FrameLog::Recovery r = log_.open(path, fleet_hash, resume);
    rec.frames = std::move(r.frames);
    rec.stale = r.stale;
    rec.torn_tail = r.torn_tail;
    active_count_ = rec.frames.size();
    return rec;
  }

  const auto files = list_segments(path);
  if (!resume) {
    for (const auto& [index, file] : files) ::unlink(file.c_str());
    log_.open(segment_path(path, 1), fleet_hash, false, 2, 0);
    rec.segments = 1;
    return rec;
  }

  // Validate the chain file by file; the first violation ends the kept
  // prefix and everything from it onward is unlinked (a sealed segment is
  // immutable, so a bad one means corruption — nothing after it is
  // trustworthy either).
  struct Kept {
    std::size_t index;
    WalContents contents;
  };
  std::vector<Kept> kept;
  std::size_t first_bad = files.size();
  std::size_t expected_index = 0;
  std::uint64_t expected_base = 0;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& [index, file] = files[i];
    WalContents seg;
    bool ok = true;
    try {
      seg = read_frame_log(file);
    } catch (const std::exception&) {
      ok = false;
    }
    if (ok && seg.version != 2) ok = false;
    if (ok && seg.fleet_hash != fleet_hash) {
      // A foreign fleet hash on the chain head means the whole chain is
      // stale (the fleet shape changed); later on it is plain corruption.
      if (kept.empty()) rec.stale = true;
      ok = false;
    }
    if (ok && !kept.empty() &&
        (index != expected_index || seg.base_ordinal != expected_base))
      ok = false;
    if (!ok) {
      first_bad = i;
      break;
    }
    expected_index = index + 1;
    expected_base = seg.base_ordinal + seg.frames.size();
    const bool torn = seg.torn_tail;
    kept.push_back({index, std::move(seg)});
    if (torn) {
      // A torn tail belongs to the last write; anything after a torn
      // segment was never validly sealed.
      first_bad = i + 1;
      break;
    }
  }
  for (std::size_t i = first_bad; i < files.size(); ++i)
    ::unlink(files[i].second.c_str());

  if (kept.empty()) {
    log_.open(segment_path(path, 1), fleet_hash, false, 2, 0);
    rec.segments = 1;
    return rec;
  }

  // Sealed prefix stays closed; the last kept segment reopens for append
  // (FrameLog::open truncates its torn tail if any).
  for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
    WalContents& seg = kept[i].contents;
    sealed_.push_back({segment_path(path, kept[i].index), seg.base_ordinal,
                       static_cast<std::uint64_t>(seg.frames.size())});
    rec.frames.insert(rec.frames.end(),
                      std::make_move_iterator(seg.frames.begin()),
                      std::make_move_iterator(seg.frames.end()));
  }
  const Kept& last = kept.back();
  active_index_ = last.index;
  active_base_ = last.contents.base_ordinal;
  FrameLog::Recovery r = log_.open(segment_path(path, last.index), fleet_hash,
                                   true, 2, active_base_);
  active_count_ = r.frames.size();
  rec.torn_tail = r.torn_tail;
  rec.frames.insert(rec.frames.end(), std::make_move_iterator(r.frames.begin()),
                    std::make_move_iterator(r.frames.end()));
  rec.base_ordinal = sealed_.empty() ? active_base_ : sealed_.front().base;
  rec.segments = sealed_.size() + 1;
  return rec;
}

void SegmentedFrameLog::rotate() {
  log_.sync();
  log_.close();
  sealed_.push_back(
      {segment_path(path_, active_index_), active_base_, active_count_});
  ++active_index_;
  active_base_ += active_count_;
  active_count_ = 0;
  log_.open(segment_path(path_, active_index_), fleet_hash_, false, 2,
            active_base_);
}

void SegmentedFrameLog::append(const Frame& frame, bool sync) {
  if (segment_frames_ > 0 && active_count_ >= segment_frames_) rotate();
  log_.append(frame, sync);
  // A hard write error closes the inner log; the frame did not land.
  if (log_.is_open()) ++active_count_;
}

std::size_t SegmentedFrameLog::reclaim_before(std::uint64_t ordinal) {
  std::size_t reclaimed = 0;
  std::vector<Segment> survivors;
  survivors.reserve(sealed_.size());
  for (Segment& seg : sealed_) {
    if (seg.base + seg.frames <= ordinal) {
      ::unlink(seg.path.c_str());
      ++reclaimed;
    } else {
      survivors.push_back(std::move(seg));
    }
  }
  sealed_ = std::move(survivors);
  return reclaimed;
}

}  // namespace vmcw::service
