// Tests for candidate scoring and the hybrid consolidation planner.

#include "core/hybrid.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/emulator.h"
#include "test_helpers.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_fleet;
using testing::small_settings;

VmWorkload diurnal_vm(const std::string& id, double base, double peak_mult,
                      std::size_t hours) {
  VmWorkload vm;
  vm.id = id;
  std::vector<double> cpu(hours), mem(hours, 2048.0);
  for (std::size_t t = 0; t < hours; ++t) {
    const double phase = std::sin(2.0 * 3.14159265358979 *
                                  static_cast<double>(t % 24) / 24.0);
    cpu[t] = base * (1.0 + (peak_mult - 1.0) * 0.5 * (1.0 + phase));
  }
  vm.cpu_rpe2 = TimeSeries(std::move(cpu));
  vm.mem_mb = TimeSeries(std::move(mem));
  return vm;
}

TEST(CandidateScore, FlatVmScoresNearZero) {
  std::vector<VmWorkload> vms{constant_vm("flat", 500, 2048, 168)};
  const auto scores = score_dynamic_candidates(vms, small_settings());
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_NEAR(scores[0].burstiness_gain, 0.0, 1e-9);
  EXPECT_NEAR(scores[0].score, 0.0, 1e-9);
}

TEST(CandidateScore, BurstyPredictableVmScoresHigh) {
  // A daily sine between base and 8x base: gain = 1 - 4.5/8 = 0.4375, with
  // near-perfect predictability.
  std::vector<VmWorkload> vms{diurnal_vm("wave", 100, 8.0, 168)};
  const auto scores = score_dynamic_candidates(vms, small_settings());
  EXPECT_NEAR(scores[0].burstiness_gain, 0.4375, 0.02);
  EXPECT_GT(scores[0].predictability, 0.9);  // perfect daily cycle
  EXPECT_GT(scores[0].score, 0.38);
}

TEST(CandidateScore, UnpredictableSpikesDiscounted) {
  // Two VMs with *identical* burstiness: one spikes at the same hour every
  // day, the other at a wandering hour. Only predictability differs, so
  // the bankable score must rank the punctual one higher.
  auto spiky = [](const std::string& id, bool wandering) {
    VmWorkload vm;
    vm.id = id;
    std::vector<double> cpu(168, 100.0), mem(168, 2048.0);
    for (std::size_t day = 0; day < 7; ++day) {
      const std::size_t hour = wandering ? (day * 7) % 24 : 12;
      cpu[day * 24 + hour] = 2000.0;
    }
    vm.cpu_rpe2 = TimeSeries(std::move(cpu));
    vm.mem_mb = TimeSeries(std::move(mem));
    return vm;
  };
  std::vector<VmWorkload> vms{spiky("erratic", true), spiky("punctual", false)};
  const auto scores = score_dynamic_candidates(vms, small_settings());
  EXPECT_NEAR(scores[0].burstiness_gain, scores[1].burstiness_gain, 1e-9);
  EXPECT_LT(scores[0].predictability, scores[1].predictability);
  EXPECT_LT(scores[0].score, scores[1].score);
}

TEST(HybridPlan, SelectsRequestedFraction) {
  const auto vms = small_fleet(80);
  const auto plan = plan_hybrid(vms, small_settings(), 0.25);
  ASSERT_TRUE(plan.has_value());
  std::size_t dynamic_members = 0;
  for (bool d : plan->is_dynamic) dynamic_members += d;
  EXPECT_EQ(dynamic_members, 20u);
}

TEST(HybridPlan, EveryVmPlacedEveryInterval) {
  const auto vms = small_fleet(60);
  const auto settings = small_settings();
  const auto plan = plan_hybrid(vms, settings, 0.3);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->per_interval.size(), settings.intervals());
  for (const auto& placement : plan->per_interval)
    EXPECT_EQ(placement.placed_count(), vms.size());
}

TEST(HybridPlan, GroupsOccupyDisjointHostRanges) {
  const auto vms = small_fleet(60);
  const auto plan = plan_hybrid(vms, small_settings(), 0.3);
  ASSERT_TRUE(plan.has_value());
  for (const auto& placement : plan->per_interval) {
    for (std::size_t vm = 0; vm < vms.size(); ++vm) {
      const auto host = static_cast<std::size_t>(placement.host_of(vm));
      if (plan->is_dynamic[vm])
        EXPECT_GE(host, plan->stochastic_hosts);
      else
        EXPECT_LT(host, plan->stochastic_hosts);
    }
  }
}

TEST(HybridPlan, StochasticVmsNeverMigrate) {
  const auto vms = small_fleet(60);
  const auto plan = plan_hybrid(vms, small_settings(), 0.3);
  ASSERT_TRUE(plan.has_value());
  for (std::size_t k = 1; k < plan->per_interval.size(); ++k) {
    for (std::size_t vm = 0; vm < vms.size(); ++vm) {
      if (!plan->is_dynamic[vm]) {
        EXPECT_EQ(plan->per_interval[k].host_of(vm),
                  plan->per_interval[k - 1].host_of(vm));
      }
    }
  }
}

TEST(HybridPlan, ZeroFractionIsPureStochastic) {
  const auto vms = small_fleet(50);
  const auto settings = small_settings();
  const auto hybrid = plan_hybrid(vms, settings, 0.0);
  const auto stochastic = plan_stochastic(vms, settings);
  ASSERT_TRUE(hybrid && stochastic);
  EXPECT_EQ(hybrid->max_dynamic_hosts, 0u);
  EXPECT_EQ(hybrid->total_migrations, 0u);
  EXPECT_EQ(hybrid->provisioned_hosts(), stochastic->hosts_used);
}

TEST(HybridPlan, FullFractionIsPureDynamic) {
  const auto vms = small_fleet(50);
  const auto settings = small_settings();
  const auto hybrid = plan_hybrid(vms, settings, 1.0);
  const auto dynamic = plan_dynamic(vms, settings);
  ASSERT_TRUE(hybrid && dynamic);
  EXPECT_EQ(hybrid->stochastic_hosts, 0u);
  EXPECT_EQ(hybrid->max_dynamic_hosts, dynamic->max_active_hosts);
}

TEST(HybridPlan, SpreadCapBindsJointlyAcrossTheSplit) {
  // One replica group of four, two flat VMs (stochastic side) and two
  // bursty-predictable VMs (dynamic side), racks of two hosts, cap 2.
  // Each side alone holds exactly cap members, so per-side enforcement
  // would drop the rule on both sides and let all four land in rack 0
  // (stochastic host 0 + dynamic host offset 1 share the rack) — 2x the
  // cap. The dynamic side must count the stochastic side's occupancy.
  std::vector<VmWorkload> vms{
      constant_vm("stoch-a", 100, 1024, 168),
      constant_vm("stoch-b", 100, 1024, 168),
      diurnal_vm("dyn-a", 100, 8.0, 168),
      diurnal_vm("dyn-b", 100, 8.0, 168),
  };
  DomainLookup racks_of_two;
  racks_of_two.tail_base = 0;
  racks_of_two.tail_first_domain = 0;
  racks_of_two.tail_hosts_per_domain = 2;
  ConstraintSet cs;
  cs.add_domain_spread({0, 1, 2, 3}, racks_of_two, 2);

  const auto settings = small_settings();
  const auto plan = plan_hybrid(vms, settings, 0.5, cs);
  ASSERT_TRUE(plan.has_value());
  std::size_t dynamic_members = 0;
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    dynamic_members += plan->is_dynamic[vm];
  ASSERT_EQ(dynamic_members, 2u);  // the bursty pair, as engineered
  EXPECT_TRUE(plan->is_dynamic[2]);
  EXPECT_TRUE(plan->is_dynamic[3]);

  for (const auto& placement : plan->per_interval) {
    ASSERT_EQ(placement.placed_count(), vms.size());
    // The parent rule judges the merged placement: at most 2 of the 4 in
    // any one rack, jointly across both sides of the split.
    EXPECT_TRUE(cs.satisfied_by(placement));
  }
}

TEST(HybridPlan, MergedScheduleEmulates) {
  const auto vms = small_fleet(60);
  const auto settings = small_settings();
  const auto plan = plan_hybrid(vms, settings, 0.3);
  ASSERT_TRUE(plan.has_value());
  const auto report =
      emulate(vms, plan->per_interval, settings, /*power_off=*/true);
  EXPECT_GE(report.provisioned_hosts, plan->stochastic_hosts);
  EXPECT_LE(report.provisioned_hosts, plan->provisioned_hosts());
  EXPECT_GT(report.energy_wh, 0.0);
}

}  // namespace
}  // namespace vmcw
