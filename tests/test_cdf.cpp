// Unit tests for util/cdf.h.

#include "util/cdf.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace vmcw {
namespace {

EmpiricalCdf make_ramp() { return EmpiricalCdf({5, 1, 3, 2, 4}); }

TEST(EmpiricalCdf, EmptyIsSafe) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_above(1.0), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(EmpiricalCdf, AtCountsInclusive) {
  const auto cdf = make_ramp();
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.2);
  EXPECT_DOUBLE_EQ(cdf.at(3.0), 0.6);
  EXPECT_DOUBLE_EQ(cdf.at(4.999), 0.8);
  EXPECT_DOUBLE_EQ(cdf.at(5.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, FractionAboveComplementsAt) {
  const auto cdf = make_ramp();
  for (double x : {0.0, 1.5, 3.0, 6.0})
    EXPECT_DOUBLE_EQ(cdf.at(x) + cdf.fraction_above(x), 1.0);
}

TEST(EmpiricalCdf, QuantileInverse) {
  const auto cdf = make_ramp();
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
}

TEST(EmpiricalCdf, QuantileClampsInput) {
  const auto cdf = make_ramp();
  EXPECT_DOUBLE_EQ(cdf.quantile(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(2.0), 5.0);
}

TEST(EmpiricalCdf, MinMax) {
  const auto cdf = make_ramp();
  EXPECT_DOUBLE_EQ(cdf.min(), 1.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 5.0);
}

TEST(EmpiricalCdf, SortedAccess) {
  const auto cdf = make_ramp();
  const auto sorted = cdf.sorted();
  ASSERT_EQ(sorted.size(), 5u);
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_LE(sorted[i - 1], sorted[i]);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  const auto cdf = make_ramp();
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 10u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].x, curve[i].x);
    EXPECT_LT(curve[i - 1].f, curve[i].f);
  }
  EXPECT_DOUBLE_EQ(curve.back().f, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().x, 5.0);
}

TEST(EmpiricalCdf, DuplicateValues) {
  const EmpiricalCdf cdf({2, 2, 2, 5});
  EXPECT_DOUBLE_EQ(cdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.at(1.999), 0.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 2.0);
}

TEST(FormatCdfTable, ContainsNamesAndQuantiles) {
  const std::vector<std::string> names{"a", "b"};
  const std::vector<EmpiricalCdf> cdfs{make_ramp(), EmpiricalCdf({10, 20})};
  const std::vector<double> quantiles{0.5, 0.9};
  const std::string table = format_cdf_table(names, cdfs, quantiles);
  EXPECT_NE(table.find("a"), std::string::npos);
  EXPECT_NE(table.find("b"), std::string::npos);
  EXPECT_NE(table.find("50.00%"), std::string::npos);
  EXPECT_NE(table.find("90.00%"), std::string::npos);
  EXPECT_NE(table.find("3.000"), std::string::npos);  // a's median
}

}  // namespace
}  // namespace vmcw
