// Tests for seasonality / predictability analysis.

#include "analysis/seasonality.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/generator.h"
#include "trace/patterns.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

TimeSeries daily_wave(std::size_t days, double base = 1.0, double amp = 0.5) {
  std::vector<double> v(days * kHoursPerDay);
  for (std::size_t t = 0; t < v.size(); ++t)
    v[t] = base + amp * std::sin(2.0 * 3.14159265358979 *
                                 static_cast<double>(t % 24) / 24.0);
  return TimeSeries(std::move(v));
}

TEST(Autocorrelation, PerfectDailyCycle) {
  const auto series = daily_wave(10);
  EXPECT_NEAR(autocorrelation(series.samples(), kHoursPerDay), 1.0, 0.05);
  // Half a day out of phase: strongly negative.
  EXPECT_LT(autocorrelation(series.samples(), 12), -0.5);
}

TEST(Autocorrelation, DegenerateInputs) {
  const std::vector<double> constant(50, 3.0);
  EXPECT_DOUBLE_EQ(autocorrelation(constant, 24), 0.0);
  const std::vector<double> tiny{1, 2};
  EXPECT_DOUBLE_EQ(autocorrelation(tiny, 24), 0.0);
}

TEST(SeasonalityProfile, PureDailyCycleIsFullySeasonal) {
  const auto profile = seasonality_profile(daily_wave(10));
  EXPECT_GT(profile.daily_acf, 0.95);
  EXPECT_GT(profile.diurnal_strength, 0.95);
}

TEST(SeasonalityProfile, WhiteNoiseIsNotSeasonal) {
  Rng rng(5);
  std::vector<double> v(480);
  for (auto& x : v) x = rng.uniform();
  const auto profile = seasonality_profile(TimeSeries(std::move(v)));
  EXPECT_LT(std::abs(profile.daily_acf), 0.2);
  EXPECT_LT(profile.diurnal_strength, 0.2);
}

TEST(SeasonalityProfile, ShortSeriesSafe) {
  const auto profile = seasonality_profile(TimeSeries({1, 2, 3}));
  EXPECT_DOUBLE_EQ(profile.daily_acf, 0.0);
  EXPECT_DOUBLE_EQ(profile.diurnal_strength, 0.0);
}

TEST(Predictability, PerfectCycleFullyPredictable) {
  const auto series = daily_wave(20);
  const auto report = predictability(series, 10 * 24, 10 * 24, 2);
  EXPECT_EQ(report.windows, 120u);
  EXPECT_DOUBLE_EQ(report.hit_rate, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_miss_shortfall, 0.0);
}

TEST(Predictability, FreshSpikeIsAMiss) {
  auto series = daily_wave(20);
  series[15 * 24 + 12] = 100.0;  // unprecedented spike on day 15
  const auto report = predictability(series, 10 * 24, 10 * 24, 2);
  EXPECT_LT(report.hit_rate, 1.0);
  EXPECT_GT(report.mean_miss_shortfall, 1.0);  // 100 vs ~1.5 predicted
}

TEST(Predictability, ZeroWindowIsEmpty) {
  const auto report = predictability(daily_wave(5), 0, 48, 0);
  EXPECT_EQ(report.windows, 0u);
}

TEST(FleetPredictability, EstateCharactersSeparate) {
  // The seasonal predictor works everywhere (hit rate >= 80%), the
  // strongly diurnal Banking estate is far more calendar-driven than the
  // flat Airlines estate, and misses do carry real shortfall (they are
  // where Fig 8/9's contention comes from).
  const auto banking = generate_datacenter(
      scaled_down(banking_spec(), 80, kHoursPerMonth), kStudySeed);
  const auto airlines = generate_datacenter(
      scaled_down(airlines_spec(), 80, kHoursPerMonth), kStudySeed);
  const auto b = fleet_predictability(banking, 384, 336, 2);
  const auto a = fleet_predictability(airlines, 384, 336, 2);
  EXPECT_GT(b.mean_hit_rate, 0.8);
  EXPECT_GT(a.mean_hit_rate, 0.8);
  EXPECT_GT(b.mean_diurnal_strength, 1.5 * a.mean_diurnal_strength);
  EXPECT_GT(b.mean_miss_shortfall, 0.1);
}

TEST(FleetPredictability, EmptyFleetSafe) {
  Datacenter empty;
  const auto f = fleet_predictability(empty, 0, 48, 2);
  EXPECT_DOUBLE_EQ(f.mean_hit_rate, 0.0);
}

}  // namespace
}  // namespace vmcw
