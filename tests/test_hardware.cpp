// Unit tests for the hardware library: specs, catalog, power, cost.

#include <gtest/gtest.h>

#include <map>

#include "hardware/catalog.h"
#include "hardware/cost_model.h"
#include "hardware/power_model.h"
#include "hardware/server_spec.h"

namespace vmcw {
namespace {

TEST(ServerSpec, Hs23RatioIsExactly160) {
  // Fig 6's caption: "the CPU to memory ratio for a high-end blade server
  // is 160".
  EXPECT_DOUBLE_EQ(hs23_elite_blade().rpe2_per_gb(), 160.0);
}

TEST(ServerSpec, RatioHandlesZeroMemory) {
  ServerSpec s;
  s.cpu_rpe2 = 100;
  s.memory_mb = 0;
  EXPECT_DOUBLE_EQ(s.rpe2_per_gb(), 0.0);
}

TEST(ResourceVector, Arithmetic) {
  const ResourceVector a{10, 100};
  const ResourceVector b{5, 50};
  EXPECT_EQ(a + b, (ResourceVector{15, 150}));
  EXPECT_EQ(a - b, (ResourceVector{5, 50}));
  EXPECT_EQ(a * 2.0, (ResourceVector{20, 200}));
}

TEST(ResourceVector, FitsWithinBothDimensions) {
  const ResourceVector cap{100, 1000};
  EXPECT_TRUE((ResourceVector{100, 1000}).fits_within(cap));
  EXPECT_TRUE((ResourceVector{0, 0}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{101, 0}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{0, 1001}).fits_within(cap));
}

TEST(ResourceVector, FitsWithinToleratesFloatAccumulation) {
  const ResourceVector cap{1.0, 1.0};
  // Ten 0.1s do not sum to exactly 1.0 in binary floating point.
  ResourceVector sum;
  for (int i = 0; i < 10; ++i) sum += ResourceVector{0.1, 0.1};
  EXPECT_TRUE(sum.fits_within(cap));
}

TEST(Catalog, SourceModelsAreOrderedSmallToLarge) {
  const auto models = source_server_models();
  ASSERT_GE(models.size(), 2u);
  EXPECT_LE(models.front().memory_mb, models.back().memory_mb);
  for (const auto& m : models) {
    EXPECT_GT(m.cpu_rpe2, 0);
    EXPECT_GT(m.memory_mb, 0);
    EXPECT_GT(m.peak_watts, m.idle_watts);
    EXPECT_GT(m.hardware_cost, 0);
  }
}

TEST(Catalog, MixSamplingFollowsWeights) {
  Rng rng(99);
  const auto mix = default_server_mix();
  std::map<std::string, int> counts;
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[mix.sample(rng).model]++;
  // The default mix's most-weighted model should dominate the least.
  const auto models = source_server_models();
  int max_count = 0, min_count = n;
  for (const auto& m : models) {
    max_count = std::max(max_count, counts[m.model]);
    min_count = std::min(min_count, counts[m.model]);
  }
  EXPECT_GT(max_count, 2 * min_count);
}

TEST(Catalog, MemoryHeavyMixHasMoreMemoryPerRpe2) {
  Rng rng1(7), rng2(7);
  const auto light = default_server_mix();
  const auto heavy = memory_heavy_server_mix();
  double light_gb = 0, heavy_gb = 0;
  for (int i = 0; i < 5000; ++i) {
    light_gb += light.sample(rng1).memory_mb;
    heavy_gb += heavy.sample(rng2).memory_mb;
  }
  EXPECT_GT(heavy_gb, light_gb * 1.3);
}

TEST(PowerModel, LinearInterpolation) {
  const PowerModel p(100, 300);
  EXPECT_DOUBLE_EQ(p.watts(0.0), 100.0);
  EXPECT_DOUBLE_EQ(p.watts(1.0), 300.0);
  EXPECT_DOUBLE_EQ(p.watts(0.5), 200.0);
}

TEST(PowerModel, ClampsUtilization) {
  const PowerModel p(100, 300);
  EXPECT_DOUBLE_EQ(p.watts(-0.5), 100.0);
  EXPECT_DOUBLE_EQ(p.watts(1.7), 300.0);
}

TEST(PowerModel, PoweredOffDrawsNothing) {
  const PowerModel p(100, 300);
  EXPECT_DOUBLE_EQ(p.watts(0.5, /*powered_on=*/false), 0.0);
}

TEST(PowerModel, PeakBelowIdleIsRepaired) {
  const PowerModel p(200, 100);  // nonsensical input
  EXPECT_GE(p.watts(1.0), p.watts(0.0));
}

TEST(PowerModel, EnergySkipsOffIntervals) {
  const PowerModel p(100, 300);
  const std::vector<double> utils{0.0, 1.0, -1.0, 0.5};  // -1 = off
  // 2-hour intervals: (100 + 300 + 0 + 200) * 2
  EXPECT_DOUBLE_EQ(p.energy_wh(utils, 2.0), 1200.0);
}

TEST(PowerModel, FromSpec) {
  const auto blade = hs23_elite_blade();
  const PowerModel p(blade);
  EXPECT_DOUBLE_EQ(p.idle_watts(), blade.idle_watts);
  EXPECT_DOUBLE_EQ(p.peak_watts(), blade.peak_watts);
}

TEST(CostModel, MoreServersCostMore) {
  const CostModel costs;
  const auto blade = hs23_elite_blade();
  EXPECT_LT(costs.space_hardware_cost(blade, 10, 14),
            costs.space_hardware_cost(blade, 11, 14));
  EXPECT_LT(costs.space_hardware_cost(blade, 10, 14),
            costs.space_hardware_cost(blade, 10, 28));
}

TEST(CostModel, ZeroServersCostNothing) {
  const CostModel costs;
  EXPECT_DOUBLE_EQ(costs.space_hardware_cost(hs23_elite_blade(), 0, 14), 0.0);
}

TEST(CostModel, PowerCostScalesWithEnergyAndPue) {
  CostParameters params;
  params.usd_per_kwh = 0.10;
  params.pue = 2.0;
  const CostModel costs(params);
  EXPECT_DOUBLE_EQ(costs.power_cost(1000.0), 0.2);  // 1 kWh * 2.0 * $0.10
}

TEST(CostModel, MonthlyCostCombinesSpaceAndAmortization) {
  CostParameters params;
  params.space_per_rack_unit_month = 100.0;
  params.amortization_months = 36.0;
  const CostModel costs(params);
  ServerSpec s;
  s.rack_units = 2.0;
  s.hardware_cost = 3600.0;
  EXPECT_DOUBLE_EQ(costs.server_month_cost(s), 200.0 + 100.0);
}

}  // namespace
}  // namespace vmcw
