// Unit + property tests for the dynamic consolidation planner.

#include "core/dynamic.h"

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "test_helpers.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_fleet;
using testing::small_settings;

TEST(DynamicPlanner, OnePlacementPerInterval) {
  const auto vms = small_fleet();
  const auto settings = small_settings();
  const auto plan = plan_dynamic(vms, settings);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->per_interval.size(), settings.intervals());
  EXPECT_EQ(plan->migrations.size(), settings.intervals());
  EXPECT_EQ(plan->migrations[0], 0u);  // nothing to migrate from
}

TEST(DynamicPlanner, EveryVmPlacedEveryInterval) {
  const auto vms = small_fleet();
  const auto plan = plan_dynamic(vms, small_settings());
  ASSERT_TRUE(plan.has_value());
  for (const auto& placement : plan->per_interval)
    EXPECT_EQ(placement.placed_count(), vms.size());
}

TEST(DynamicPlanner, RespectsUtilizationBoundOnPredictedSizes) {
  const auto vms = small_fleet();
  auto settings = small_settings();
  settings.dynamic_utilization_bound = 0.8;
  const auto plan = plan_dynamic(vms, settings);
  ASSERT_TRUE(plan.has_value());
  const PeakPredictor predictor(settings.predictor);
  const auto capacity = settings.capacity(0.8);

  for (std::size_t k = 0; k < plan->per_interval.size(); ++k) {
    const std::size_t hour = settings.eval_begin() + k * settings.interval_hours;
    std::vector<ResourceVector> loads(
        plan->per_interval[k].host_index_bound());
    for (std::size_t vm = 0; vm < vms.size(); ++vm) {
      loads[static_cast<std::size_t>(plan->per_interval[k].host_of(vm))] +=
          predict_vm_demand(predictor, vms[vm], hour, settings.interval_hours);
    }
    for (const auto& load : loads) EXPECT_TRUE(load.fits_within(capacity));
  }
}

TEST(DynamicPlanner, MigrationCountsMatchPlacementDiffs) {
  const auto vms = small_fleet();
  const auto plan = plan_dynamic(vms, small_settings());
  ASSERT_TRUE(plan.has_value());
  std::size_t total = 0;
  for (std::size_t k = 1; k < plan->per_interval.size(); ++k) {
    const auto moved = Placement::migrations_between(plan->per_interval[k - 1],
                                                     plan->per_interval[k]);
    EXPECT_EQ(plan->migrations[k], moved);
    total += moved;
  }
  EXPECT_EQ(plan->total_migrations, total);
}

TEST(DynamicPlanner, MaxActiveHostsConsistent) {
  const auto vms = small_fleet();
  const auto plan = plan_dynamic(vms, small_settings());
  ASSERT_TRUE(plan.has_value());
  std::size_t max_active = 0;
  for (const auto& p : plan->per_interval)
    max_active = std::max(max_active, p.active_host_count());
  EXPECT_EQ(plan->max_active_hosts, max_active);
}

TEST(DynamicPlanner, ConstantDemandNeedsNoMigration) {
  std::vector<VmWorkload> vms;
  for (int i = 0; i < 20; ++i)
    vms.push_back(constant_vm("v" + std::to_string(i), 1000.0, 4096.0, 168));
  const auto plan = plan_dynamic(vms, small_settings());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->total_migrations, 0u);
}

TEST(DynamicPlanner, PinnedVmNeverMoves) {
  auto vms = small_fleet(40);
  ConstraintSet cs(vms.size());
  cs.pin(0, 0);
  cs.pin(1, 1);
  const auto plan = plan_dynamic(vms, small_settings(), cs);
  ASSERT_TRUE(plan.has_value());
  for (const auto& p : plan->per_interval) {
    EXPECT_EQ(p.host_of(0), 0);
    EXPECT_EQ(p.host_of(1), 1);
  }
}

TEST(DynamicPlanner, AffinityPreservedEveryInterval) {
  auto vms = small_fleet(40);
  ConstraintSet cs(vms.size());
  cs.add_affinity(2, 3);
  cs.add_affinity(3, 4);
  const auto plan = plan_dynamic(vms, small_settings(), cs);
  ASSERT_TRUE(plan.has_value());
  for (const auto& p : plan->per_interval) {
    EXPECT_EQ(p.host_of(2), p.host_of(3));
    EXPECT_EQ(p.host_of(3), p.host_of(4));
  }
}

TEST(DynamicPlanner, AntiAffinityPreservedEveryInterval) {
  auto vms = small_fleet(40);
  ConstraintSet cs(vms.size());
  cs.add_anti_affinity(5, 6);
  const auto plan = plan_dynamic(vms, small_settings(), cs);
  ASSERT_TRUE(plan.has_value());
  for (const auto& p : plan->per_interval)
    EXPECT_NE(p.host_of(5), p.host_of(6));
}

TEST(DynamicPlanner, InfeasibleConstraintsRejected) {
  auto vms = small_fleet(10);
  ConstraintSet cs(vms.size());
  cs.add_affinity(0, 1);
  cs.add_anti_affinity(0, 1);
  EXPECT_FALSE(plan_dynamic(vms, small_settings(), cs).has_value());
}

TEST(DynamicPlanner, Deterministic) {
  const auto vms = small_fleet();
  const auto a = plan_dynamic(vms, small_settings());
  const auto b = plan_dynamic(vms, small_settings());
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->total_migrations, b->total_migrations);
  for (std::size_t k = 0; k < a->per_interval.size(); ++k)
    EXPECT_EQ(a->per_interval[k], b->per_interval[k]);
}

// Property (Fig 13-16's mechanism): provisioning requirement grows as the
// utilization bound shrinks.
class UtilizationBoundSweep : public ::testing::TestWithParam<double> {};

TEST_P(UtilizationBoundSweep, TighterBoundNeverNeedsFewerHosts) {
  const auto vms = small_fleet(80);
  auto settings = small_settings();
  settings.dynamic_utilization_bound = GetParam();
  const auto tight = plan_dynamic(vms, settings);
  settings.dynamic_utilization_bound = 1.0;
  const auto loose = plan_dynamic(vms, settings);
  ASSERT_TRUE(tight && loose);
  // Heuristic packing allows 1 host of slack, but the trend must hold.
  EXPECT_GE(tight->max_active_hosts + 1, loose->max_active_hosts);
}

INSTANTIATE_TEST_SUITE_P(Bounds, UtilizationBoundSweep,
                         ::testing::Values(0.5, 0.6, 0.7, 0.8, 0.9));

}  // namespace
}  // namespace vmcw
