// Unit tests for the seasonal-max demand predictor.

#include "core/predictor.h"

#include <gtest/gtest.h>

#include <vector>

#include "trace/patterns.h"

namespace vmcw {
namespace {

PeakPredictor::Options no_margin() {
  PeakPredictor::Options o;
  o.cpu_safety_margin = 1.0;
  o.mem_safety_margin = 1.0;
  return o;
}

TEST(PeakPredictor, UsesSameWindowOnPreviousDays) {
  // Daily pattern: demand 10 except hour 12 of each day = 50.
  std::vector<double> v(24 * 8, 10.0);
  for (std::size_t d = 0; d < 8; ++d) v[d * 24 + 12] = 50.0;
  const TimeSeries series(v);
  const PeakPredictor p(no_margin());
  // Predicting the noon window of day 7 sees day 6's noon spike.
  EXPECT_DOUBLE_EQ(p.predict(series, 7 * 24 + 12, 2, 1.0), 50.0);
  // Predicting an off-peak window sees only the base.
  EXPECT_DOUBLE_EQ(p.predict(series, 7 * 24 + 2, 2, 1.0), 10.0);
}

TEST(PeakPredictor, UsesImmediatelyPrecedingWindow) {
  // A fresh level shift in the last 2 hours must be picked up.
  std::vector<double> v(48, 10.0);
  v[46] = 80.0;
  v[47] = 80.0;
  const TimeSeries series(v);
  const PeakPredictor p(no_margin());
  EXPECT_DOUBLE_EQ(p.predict(series, 48, 2, 1.0), 80.0);
}

TEST(PeakPredictor, CannotSeeTheFuture) {
  std::vector<double> v(24 * 8, 10.0);
  v[7 * 24 + 13] = 99.0;  // spike inside the predicted window itself
  const TimeSeries series(v);
  const PeakPredictor p(no_margin());
  EXPECT_DOUBLE_EQ(p.predict(series, 7 * 24 + 12, 2, 1.0), 10.0);
}

TEST(PeakPredictor, LookbackDaysLimit) {
  // Spike 5 days ago; lookback of 3 days must not see it.
  std::vector<double> v(24 * 10, 10.0);
  v[4 * 24 + 12] = 70.0;
  const TimeSeries series(v);
  PeakPredictor::Options o = no_margin();
  o.lookback_days = 3;
  const PeakPredictor p(o);
  EXPECT_DOUBLE_EQ(p.predict(series, 9 * 24 + 12, 2, 1.0), 10.0);
  PeakPredictor::Options wide = no_margin();
  wide.lookback_days = 7;
  EXPECT_DOUBLE_EQ(PeakPredictor(wide).predict(series, 9 * 24 + 12, 2, 1.0),
                   70.0);
}

TEST(PeakPredictor, SafetyMarginScales) {
  const TimeSeries series(std::vector<double>(72, 10.0));
  const PeakPredictor p(no_margin());
  EXPECT_DOUBLE_EQ(p.predict(series, 48, 2, 1.25), 12.5);
}

TEST(PeakPredictor, EarlyHoursWithLittleHistory) {
  const TimeSeries series(std::vector<double>{5, 6, 7, 8});
  const PeakPredictor p(no_margin());
  // hour 2, len 2: no same-window-previous-day, only preceding window {5,6}.
  EXPECT_DOUBLE_EQ(p.predict(series, 2, 2, 1.0), 6.0);
  // hour 0: no history at all.
  EXPECT_DOUBLE_EQ(p.predict(series, 0, 2, 1.0), 0.0);
}

TEST(PeakPredictor, PredictVmAppliesPerResourceMargins) {
  VmWorkload vm;
  vm.cpu_rpe2 = TimeSeries(std::vector<double>(48, 100.0));
  vm.mem_mb = TimeSeries(std::vector<double>(48, 1000.0));
  PeakPredictor::Options o;
  o.cpu_safety_margin = 1.2;
  o.mem_safety_margin = 1.05;
  const PeakPredictor p(o);
  const auto predicted = predict_vm_demand(p, vm, 26, 2);
  EXPECT_DOUBLE_EQ(predicted.cpu_rpe2, 120.0);
  EXPECT_DOUBLE_EQ(predicted.memory_mb, 1050.0);
}

TEST(PeakPredictor, DefaultMarginsAreCpuHeavy) {
  const PeakPredictor p;
  EXPECT_GT(p.options().cpu_safety_margin, p.options().mem_safety_margin);
  EXPECT_GE(p.options().mem_safety_margin, 1.0);
}

}  // namespace
}  // namespace vmcw
