// Unit tests for the deployment-constraint framework.

#include "core/constraints.h"

#include <gtest/gtest.h>

namespace vmcw {
namespace {

TEST(ConstraintSet, EmptyByDefault) {
  const ConstraintSet cs(4);
  EXPECT_TRUE(cs.empty());
  EXPECT_TRUE(cs.structurally_feasible());
  EXPECT_EQ(cs.affinity_groups().size(), 4u);  // all singletons
}

TEST(ConstraintSet, AffinityGroupsAreTransitive) {
  ConstraintSet cs(6);
  cs.add_affinity(0, 1);
  cs.add_affinity(1, 2);
  const auto groups = cs.affinity_groups();
  // {0,1,2}, {3}, {4}, {5}
  ASSERT_EQ(groups.size(), 4u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(ConstraintSet, AffinityGrowsVmCount) {
  ConstraintSet cs;  // empty
  cs.add_affinity(2, 5);
  EXPECT_GE(cs.vm_count(), 6u);
}

TEST(ConstraintSet, PinnedHostLookup) {
  ConstraintSet cs(3);
  cs.pin(1, 7);
  EXPECT_EQ(cs.pinned_host(1), 7);
  EXPECT_EQ(cs.pinned_host(0), Placement::kUnplaced);
}

TEST(ConstraintSet, AllowsRespectsPin) {
  ConstraintSet cs(2);
  cs.pin(0, 3);
  Placement p(2);
  EXPECT_TRUE(cs.allows(0, 3, p));
  EXPECT_FALSE(cs.allows(0, 4, p));
  EXPECT_TRUE(cs.allows(1, 4, p));
}

TEST(ConstraintSet, AllowsRespectsForbid) {
  ConstraintSet cs(2);
  cs.forbid(0, 2);
  Placement p(2);
  EXPECT_FALSE(cs.allows(0, 2, p));
  EXPECT_TRUE(cs.allows(0, 1, p));
}

TEST(ConstraintSet, AllowsRespectsAntiAffinity) {
  ConstraintSet cs(3);
  cs.add_anti_affinity(0, 1);
  Placement p(3);
  p.assign(1, 5);
  EXPECT_FALSE(cs.allows(0, 5, p));
  EXPECT_TRUE(cs.allows(0, 4, p));
  EXPECT_TRUE(cs.allows(2, 5, p));
}

TEST(ConstraintSet, AllowsGroupChecksAllMembers) {
  ConstraintSet cs(4);
  cs.add_anti_affinity(1, 3);
  Placement p(4);
  p.assign(3, 0);
  EXPECT_FALSE(cs.allows_group({0, 1}, 0, p));
  EXPECT_TRUE(cs.allows_group({0, 2}, 0, p));
}

TEST(ConstraintSet, AllowsGroupRejectsInternalAntiAffinity) {
  ConstraintSet cs(3);
  cs.add_anti_affinity(0, 1);
  Placement p(3);
  EXPECT_FALSE(cs.allows_group({0, 1}, 2, p));
}

TEST(ConstraintSet, SatisfiedByCompletePlacement) {
  ConstraintSet cs(4);
  cs.add_affinity(0, 1);
  cs.add_anti_affinity(2, 3);
  cs.pin(2, 1);

  Placement good(4);
  good.assign(0, 0);
  good.assign(1, 0);
  good.assign(2, 1);
  good.assign(3, 2);
  EXPECT_TRUE(cs.satisfied_by(good));

  Placement split_affinity = good;
  split_affinity.assign(1, 2);
  EXPECT_FALSE(cs.satisfied_by(split_affinity));

  Placement broken_anti = good;
  broken_anti.assign(3, 1);
  EXPECT_FALSE(cs.satisfied_by(broken_anti));

  Placement wrong_pin = good;
  wrong_pin.assign(2, 0);
  EXPECT_FALSE(cs.satisfied_by(wrong_pin));

  Placement incomplete = good;
  incomplete.unassign(0);
  EXPECT_FALSE(cs.satisfied_by(incomplete));
}

TEST(ConstraintSet, StructurallyInfeasibleCases) {
  {
    ConstraintSet cs(3);
    cs.add_affinity(0, 1);
    cs.add_anti_affinity(0, 1);
    EXPECT_FALSE(cs.structurally_feasible());
  }
  {
    ConstraintSet cs(3);
    cs.add_affinity(0, 1);
    cs.pin(0, 1);
    cs.pin(1, 2);
    EXPECT_FALSE(cs.structurally_feasible());
  }
  {
    ConstraintSet cs(3);
    cs.pin(0, 1);
    cs.forbid(0, 1);
    EXPECT_FALSE(cs.structurally_feasible());
  }
  {
    ConstraintSet cs(3);
    cs.add_affinity(0, 1);
    cs.add_anti_affinity(1, 2);
    cs.pin(0, 4);
    EXPECT_TRUE(cs.structurally_feasible());
  }
}

// Helper: hosts 0..5 in domains {0,0,1,1,2,2}; hosts past the table are
// unknown unless a tail is set.
DomainLookup paired_domains() {
  DomainLookup lookup;
  lookup.table = {0, 0, 1, 1, 2, 2};
  return lookup;
}

TEST(DomainLookup, TableTailAndOffset) {
  DomainLookup lookup = paired_domains();
  EXPECT_EQ(lookup.domain_of(0), 0);
  EXPECT_EQ(lookup.domain_of(5), 2);
  EXPECT_EQ(lookup.domain_of(6), -1);  // past the table, no tail
  EXPECT_EQ(lookup.domain_of(-1), -1);
  lookup.tail_base = 6;
  lookup.tail_first_domain = 3;
  lookup.tail_hosts_per_domain = 2;
  EXPECT_EQ(lookup.domain_of(6), 3);
  EXPECT_EQ(lookup.domain_of(7), 3);
  EXPECT_EQ(lookup.domain_of(8), 4);
  lookup.host_offset = 4;  // sub-problem host 0 is fleet host 4
  EXPECT_EQ(lookup.domain_of(0), 2);
  EXPECT_EQ(lookup.domain_of(2), 3);
}

TEST(ConstraintSet, DomainSpreadBlocksOverfilledDomain) {
  ConstraintSet cs;
  cs.add_domain_spread({0, 1, 2}, paired_domains(), 1);
  EXPECT_FALSE(cs.empty());
  Placement p(3);
  p.assign(0, 0);  // domain 0
  // Host 1 shares domain 0: blocked. Host 2 is domain 1: fine.
  EXPECT_FALSE(cs.allows(1, 1, p));
  EXPECT_TRUE(cs.allows(1, 2, p));
  // A VM outside the rule is unconstrained.
  EXPECT_TRUE(cs.allows(5, 1, p));
  p.assign(1, 2);
  // Both domains 0 and 1 now hold one member; domain 2 is the only slot.
  EXPECT_FALSE(cs.allows(2, 1, p));
  EXPECT_FALSE(cs.allows(2, 3, p));
  EXPECT_TRUE(cs.allows(2, 4, p));
  // Hosts with unknown domain are never constrained.
  EXPECT_TRUE(cs.allows(2, 9, p));
}

TEST(ConstraintSet, DomainSpreadCountsGroupsAsOne) {
  // An affinity group landing together counts every member against the
  // domain cap at once.
  ConstraintSet cs;
  cs.add_domain_spread({0, 1, 2}, paired_domains(), 2);
  Placement p(3);
  // Group {0,1} onto host 0 (domain 0, cap 2): allowed.
  EXPECT_TRUE(cs.allows_group({0, 1}, 0, p));
  // Group {0,1,2} would put 3 members into domain 0: blocked.
  EXPECT_FALSE(cs.allows_group({0, 1, 2}, 0, p));
  p.assign(0, 1);  // domain 0 holds one member already
  EXPECT_FALSE(cs.allows_group({1, 2}, 0, p));
  EXPECT_TRUE(cs.allows_group({1, 2}, 2, p));
}

TEST(ConstraintSet, DomainSpreadSatisfiedBy) {
  ConstraintSet cs;
  cs.add_domain_spread({0, 1, 2}, paired_domains(), 1);
  Placement ok(3);
  ok.assign(0, 0);
  ok.assign(1, 2);
  ok.assign(2, 4);
  EXPECT_TRUE(cs.satisfied_by(ok));
  Placement bad = ok;
  bad.assign(2, 1);  // domains {0, 1, 0}: cap 1 violated
  EXPECT_FALSE(cs.satisfied_by(bad));
}

TEST(ConstraintSet, DomainSpreadPreplacedBaselineCountsTowardTheCap) {
  // Members committed outside the sub-problem (hybrid's other side) are a
  // per-domain baseline: the cap binds jointly, not per side.
  ConstraintSet cs;
  cs.add_domain_spread({0, 1, 2}, paired_domains(), 2,
                       /*preplaced=*/{{0, 2}, {1, 1}});
  Placement p(3);
  // Domain 0 already holds 2 members elsewhere: hosts 0-1 are full.
  EXPECT_FALSE(cs.allows(0, 0, p));
  EXPECT_FALSE(cs.allows(0, 1, p));
  // Domain 1 holds 1 of 2: one local member fits, a pair does not.
  EXPECT_TRUE(cs.allows(0, 2, p));
  EXPECT_FALSE(cs.allows_group({0, 1}, 2, p));
  // Domain 2 has no baseline: a pair fits, then it is full.
  EXPECT_TRUE(cs.allows_group({0, 1}, 4, p));
  p.assign(0, 4);
  p.assign(1, 5);
  EXPECT_FALSE(cs.allows(2, 4, p));
  // Validation applies the same joint arithmetic.
  Placement full(3);
  full.assign(0, 2);  // domain 1: 1 + 1 = cap
  full.assign(1, 4);
  full.assign(2, 5);  // domain 2: 2 = cap
  EXPECT_TRUE(cs.satisfied_by(full));
  Placement over = full;
  over.assign(0, 1);  // domain 0: 2 preplaced + 1 > cap
  EXPECT_FALSE(cs.satisfied_by(over));
}

TEST(ConstraintSet, DomainSpreadStructuralFeasibility) {
  // Pins forcing 2 members into one domain under cap 1 are structurally
  // infeasible regardless of capacity.
  ConstraintSet cs;
  cs.add_domain_spread({0, 1}, paired_domains(), 1);
  cs.pin(0, 0);
  cs.pin(1, 1);  // same domain as host 0
  EXPECT_FALSE(cs.structurally_feasible());
  ConstraintSet ok;
  ok.add_domain_spread({0, 1}, paired_domains(), 1);
  ok.pin(0, 0);
  ok.pin(1, 2);
  EXPECT_TRUE(ok.structurally_feasible());
}

TEST(Placement, Accounting) {
  Placement p(5);
  EXPECT_EQ(p.placed_count(), 0u);
  EXPECT_EQ(p.host_index_bound(), 0u);
  p.assign(0, 2);
  p.assign(1, 2);
  p.assign(2, 4);
  EXPECT_EQ(p.placed_count(), 3u);
  EXPECT_EQ(p.host_index_bound(), 5u);
  EXPECT_EQ(p.active_host_count(), 2u);  // hosts 2 and 4
  const auto by_host = p.vms_by_host();
  ASSERT_EQ(by_host.size(), 5u);
  EXPECT_EQ(by_host[2], (std::vector<std::size_t>{0, 1}));
  EXPECT_TRUE(by_host[3].empty());
}

TEST(Placement, MigrationsBetween) {
  Placement a(4), b(4);
  a.assign(0, 0);
  a.assign(1, 1);
  a.assign(2, 2);
  b.assign(0, 0);   // unchanged
  b.assign(1, 2);   // moved
  b.assign(3, 1);   // newly placed: not a migration
  // vm 2 unplaced in b: not a migration
  EXPECT_EQ(Placement::migrations_between(a, b), 1u);
}

}  // namespace
}  // namespace vmcw
