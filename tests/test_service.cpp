// Online service layer: protocol round-trips, WAL recovery, and the
// daemon's determinism contract — decision logs byte-identical across
// thread counts, live vs replay, and SIGKILL-style crash + resume.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "engine/engine.h"
#include "hardware/catalog.h"
#include "runtime/thread_pool.h"
#include "service/churn.h"
#include "service/controller.h"
#include "service/daemon.h"
#include "service/protocol.h"
#include "service/telemetry_log.h"
#include "test_helpers.h"
#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw::service {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// One frame of every kind, with non-default values in every field.
std::vector<Frame> sample_frames() {
  return {
      HelloFrame{kProtocolVersion, 0xfeedface, "producer-a"},
      HeartbeatFrame{7},
      FlushFrame{8},
      ShutdownFrame{9},
      HostTelemetryDeltaFrame{
          4, 2, {VmSample{11, 1.5, 2048.0}, VmSample{12, 0.25, 512.5}}},
      VmArrivalFrame{3, 42, "web-tier", 2.75, 4096.0},
      VmDepartureFrame{5, 42},
      DecisionBatchFrame{
          6,
          true,
          {Decision{42, DecisionAction::kAdmit, DecisionReason::kAdmitted, -1,
                    3},
           Decision{11, DecisionAction::kMigrate, DecisionReason::kContention,
                    3, 9},
           Decision{12, DecisionAction::kHold, DecisionReason::kStaleTelemetry,
                    1, 1}}},
      AckFrame{0x1234567890abcdefULL},
      RejectFrame{42, RejectCode::kOutOfOrder, "gap after 41"},
  };
}

/// The small churn stream the WAL/daemon tests share: arrivals,
/// departures and agent blackouts over 8 ticks.
std::vector<Frame> small_churn() {
  ChurnOptions churn;
  churn.agents = 4;
  churn.initial_vms = 24;
  churn.ticks = 8;
  churn.arrivals_per_tick = 1.5;
  churn.departure_prob = 0.05;
  churn.blackout_prob = 0.2;
  churn.mean_host_fraction = 0.3;
  churn.seed = 11;
  return generate_churn(churn, ControllerConfig{});
}

void write_wal(const std::string& path, const std::vector<Frame>& frames) {
  FrameLog wal;
  wal.open(path, fleet_config_hash(ControllerConfig{}), /*resume=*/false);
  for (const Frame& frame : frames) wal.append(frame, /*sync=*/false);
  wal.sync();
}

// ---------------------------------------------------------------- protocol

TEST(Protocol, RoundTripsEveryFrameKind) {
  for (const Frame& frame : sample_frames()) {
    const auto bytes = encode_frame(frame);
    ASSERT_GE(bytes.size(), kFrameHeaderSize);
    const DecodedFrame decoded = decode_frame(bytes.data(), bytes.size());
    EXPECT_EQ(decoded.consumed, bytes.size());
    EXPECT_EQ(decoded.frame, frame) << to_string(frame_kind(frame));
    // Encoding is pure: decode-then-re-encode is byte-identical.
    EXPECT_EQ(encode_frame(decoded.frame), bytes);
  }
}

TEST(Protocol, DecodesConcatenatedStream) {
  const auto frames = sample_frames();
  std::vector<std::uint8_t> bytes;
  for (const Frame& frame : frames) {
    const auto one = encode_frame(frame);
    bytes.insert(bytes.end(), one.begin(), one.end());
  }
  EXPECT_EQ(decode_frames(bytes), frames);
}

TEST(Protocol, RejectsTruncatedFrame) {
  const auto bytes = encode_frame(VmArrivalFrame{1, 2, "app", 1.0, 2.0});
  for (const std::size_t cut :
       {std::size_t{0}, std::size_t{1}, kFrameHeaderSize - 1,
        kFrameHeaderSize, bytes.size() - 1}) {
    EXPECT_THROW(decode_frame(bytes.data(), cut), std::runtime_error)
        << "cut at " << cut;
  }
}

TEST(Protocol, RejectsCorruptPayload) {
  auto bytes = encode_frame(HostTelemetryDeltaFrame{
      1, 2, {VmSample{3, 4.0, 5.0}}});
  bytes[kFrameHeaderSize + 2] ^= 0x40;  // flip a payload bit
  EXPECT_THROW(decode_frame(bytes.data(), bytes.size()), std::runtime_error);
}

TEST(Protocol, RejectsUnknownKind) {
  auto bytes = encode_frame(HeartbeatFrame{1});
  bytes[0] = 0x7f;
  EXPECT_THROW(decode_frame(bytes.data(), bytes.size()), std::runtime_error);
}

// --------------------------------------------------------------- frame WAL

TEST(FrameLog, RecoversIntactPrefixAndTruncatesTornTail) {
  const std::string dir = temp_dir("vmcw_service_torn");
  const std::string path = dir + "/torn.wal";
  const auto frames = sample_frames();
  write_wal(path, frames);

  // Simulate a crash mid-append: a partial frame at the tail.
  const std::string intact = file_bytes(path);
  const auto partial = encode_frame(FlushFrame{99});
  std::string torn = intact;
  torn.append(reinterpret_cast<const char*>(partial.data()),
              partial.size() - 5);
  write_bytes(path, torn);

  FrameLog log;
  const auto recovery =
      log.open(path, fleet_config_hash(ControllerConfig{}), /*resume=*/true);
  EXPECT_FALSE(recovery.stale);
  EXPECT_TRUE(recovery.torn_tail);
  EXPECT_EQ(recovery.bytes_discarded, partial.size() - 5);
  EXPECT_EQ(recovery.frames, frames);
  // The torn tail is gone from disk; appending continues cleanly.
  log.append(FlushFrame{100});
  log.close();
  const auto contents = read_frame_log(path);
  EXPECT_FALSE(contents.torn_tail);
  ASSERT_EQ(contents.frames.size(), frames.size() + 1);
  EXPECT_EQ(contents.frames.back(), Frame{FlushFrame{100}});
}

TEST(FrameLog, StaleOnFleetHashMismatch) {
  const std::string dir = temp_dir("vmcw_service_stale");
  const std::string path = dir + "/stale.wal";
  write_wal(path, sample_frames());

  FrameLog log;
  const auto recovery = log.open(path, /*fleet_hash=*/0xdead, /*resume=*/true);
  EXPECT_TRUE(recovery.stale);
  EXPECT_TRUE(recovery.frames.empty());
  log.close();
  // The file was rewritten for the new fleet shape.
  EXPECT_EQ(read_frame_log(path).fleet_hash, 0xdeadu);
}

TEST(FrameLog, ReadMatchesRecovery) {
  const std::string dir = temp_dir("vmcw_service_read");
  const std::string path = dir + "/read.wal";
  const auto frames = small_churn();
  write_wal(path, frames);

  const WalContents contents = read_frame_log(path);
  EXPECT_EQ(contents.fleet_hash, fleet_config_hash(ControllerConfig{}));
  EXPECT_EQ(contents.frames, frames);
  EXPECT_FALSE(contents.torn_tail);

  FrameLog log;
  const auto recovery =
      log.open(path, fleet_config_hash(ControllerConfig{}), /*resume=*/true);
  EXPECT_EQ(recovery.frames, frames);
  EXPECT_EQ(recovery.content_hash, contents.content_hash);
}

// ----------------------------------------------------------- determinism

TEST(Daemon, ReplayByteIdenticalAcrossThreadCounts) {
  const std::string dir = temp_dir("vmcw_service_threads");
  const std::string wal = dir + "/churn.wal";
  write_wal(wal, small_churn());

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::string decisions =
        dir + "/decisions_" + std::to_string(threads);
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const DaemonStats stats = replay_wal(wal, decisions, ControllerConfig{},
                                         /*resume=*/false, /*durable=*/false);
    EXPECT_GT(stats.batches, 0u);
    EXPECT_GT(stats.admits, 0u);
    const std::string bytes = file_bytes(decisions);
    ASSERT_FALSE(bytes.empty());
    if (reference.empty())
      reference = bytes;
    else
      EXPECT_EQ(bytes, reference) << "at " << threads << " threads";
  }
}

TEST(Daemon, CrashAndResumeByteIdentical) {
  const std::string dir = temp_dir("vmcw_service_resume");
  const std::string wal = dir + "/churn.wal";
  write_wal(wal, small_churn());

  const std::string full_path = dir + "/decisions_full";
  replay_wal(wal, full_path, ControllerConfig{}, /*resume=*/false,
             /*durable=*/false);
  const std::string full = file_bytes(full_path);
  ASSERT_GT(full.size(), kFrameHeaderSize);

  // A SIGKILL can land anywhere: mid-header, mid-frame, or between
  // frames. Resuming from any prefix must complete to the same bytes.
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    for (const std::size_t cut :
         {std::size_t{5}, full.size() / 3, full.size() / 2,
          full.size() - 3}) {
      const std::string crashed =
          dir + "/decisions_cut" + std::to_string(cut) + "_t" +
          std::to_string(threads);
      write_bytes(crashed, full.substr(0, cut));
      replay_wal(wal, crashed, ControllerConfig{}, /*resume=*/true,
                 /*durable=*/false);
      EXPECT_EQ(file_bytes(crashed), full)
          << "cut at " << cut << ", " << threads << " threads";
    }
  }
}

TEST(Daemon, LiveIngestMatchesReplay) {
  const std::string dir = temp_dir("vmcw_service_live");
  const auto frames = small_churn();

  Daemon::Options options;
  options.wal_path = dir + "/live.wal";
  options.decisions_path = dir + "/decisions_live";
  options.durable = false;
  Daemon daemon(ControllerConfig{}, options);
  const auto opened = daemon.open();
  EXPECT_EQ(opened.frames_recovered, 0u);
  for (const Frame& frame : frames) daemon.ingest(frame);
  daemon.close();

  // The live session's WAL replays to the exact same decision bytes.
  const std::string replayed = dir + "/decisions_replay";
  const DaemonStats stats =
      replay_wal(options.wal_path, replayed, ControllerConfig{},
                 /*resume=*/false, /*durable=*/false);
  EXPECT_EQ(stats.batches, daemon.stats().batches);
  const std::string live_bytes = file_bytes(options.decisions_path);
  ASSERT_FALSE(live_bytes.empty());
  EXPECT_EQ(live_bytes, file_bytes(replayed));
}

// ------------------------------------------------------------- controller

TEST(Controller, StaleTelemetryHoldsAndDegrades) {
  IncrementalController controller{ControllerConfig{}};
  const ServerSpec spec = hs23_elite_blade();
  const double cpu = spec.cpu_rpe2 * 0.3;
  const double mem = spec.memory_mb * 0.3;

  controller.apply(HelloFrame{kProtocolVersion, 0, "test"});
  controller.apply(VmArrivalFrame{1, 101, "", cpu, mem});
  const auto tick1 = controller.tick(1);
  ASSERT_EQ(tick1.decisions.size(), 1u);
  EXPECT_EQ(tick1.decisions[0].action, DecisionAction::kAdmit);
  const std::int32_t host = controller.host_of(101);
  ASSERT_NE(host, -1);

  // Within stale_after (default 2) ticks of its last sample: no holds.
  EXPECT_FALSE(controller.tick(2).degraded);
  EXPECT_FALSE(controller.tick(3).degraded);

  // One past the deadline: hold + degraded, and the VM's host is frozen —
  // a newcomer that would first-fit onto it must land elsewhere.
  controller.apply(VmArrivalFrame{4, 202, "", cpu, mem});
  const auto tick4 = controller.tick(4);
  EXPECT_TRUE(tick4.degraded);
  EXPECT_TRUE(controller.last_tick_degraded());
  bool stale_hold = false;
  for (const Decision& d : tick4.decisions)
    if (d.vm == 101 && d.action == DecisionAction::kHold &&
        d.reason == DecisionReason::kStaleTelemetry && d.from == host)
      stale_hold = true;
  EXPECT_TRUE(stale_hold);
  ASSERT_NE(controller.host_of(202), -1);
  EXPECT_NE(controller.host_of(202), host);

  // Fresh telemetry clears the degradation.
  controller.apply(
      HostTelemetryDeltaFrame{5, 0, {VmSample{101, cpu, mem}}});
  EXPECT_FALSE(controller.tick(5).degraded);
}

TEST(Controller, HoldsWithoutCapacityAndRetriesFifo) {
  ControllerConfig config;
  config.pool = HostPool({HostClass{hs23_elite_blade(), 1}});
  IncrementalController controller{config};
  const ServerSpec spec = hs23_elite_blade();

  controller.apply(
      VmArrivalFrame{1, 1, "", spec.cpu_rpe2 * 0.6, spec.memory_mb * 0.6});
  controller.apply(
      VmArrivalFrame{1, 2, "", spec.cpu_rpe2 * 0.5, spec.memory_mb * 0.5});
  const auto tick1 = controller.tick(1);
  ASSERT_EQ(tick1.decisions.size(), 2u);
  EXPECT_EQ(tick1.decisions[0].vm, 1u);
  EXPECT_EQ(tick1.decisions[0].action, DecisionAction::kAdmit);
  EXPECT_EQ(tick1.decisions[1].vm, 2u);
  EXPECT_EQ(tick1.decisions[1].action, DecisionAction::kHold);
  EXPECT_EQ(tick1.decisions[1].reason, DecisionReason::kNoCapacity);

  // Still queued next tick; admitted once the first VM departs.
  const auto tick2 = controller.tick(2);
  ASSERT_EQ(tick2.decisions.size(), 1u);
  EXPECT_EQ(tick2.decisions[0].action, DecisionAction::kHold);
  controller.apply(VmDepartureFrame{2, 1});
  const auto tick3 = controller.tick(3);
  ASSERT_EQ(tick3.decisions.size(), 1u);
  EXPECT_EQ(tick3.decisions[0].vm, 2u);
  EXPECT_EQ(tick3.decisions[0].action, DecisionAction::kAdmit);
}

TEST(Controller, AdmissionHonorsDomainSpread) {
  ControllerConfig config;
  config.domains.spread = true;
  config.domains.spread_k = 2;
  config.domains.hosts_per_rack = 1;
  config.domains.racks_per_power_domain = 2;
  IncrementalController controller{config};
  const ServerSpec spec = hs23_elite_blade();
  const double cpu = spec.cpu_rpe2 * 0.1;
  const double mem = spec.memory_mb * 0.1;

  // Two replicas of one app, small enough to share a host — the rack and
  // power-feed spread rules must still split them across both layers.
  controller.apply(VmArrivalFrame{1, 1, "web", cpu, mem});
  controller.apply(VmArrivalFrame{1, 2, "web", cpu, mem});
  controller.tick(1);
  const std::int32_t a = controller.host_of(1);
  const std::int32_t b = controller.host_of(2);
  ASSERT_NE(a, -1);
  ASSERT_NE(b, -1);
  EXPECT_NE(a, b);  // different racks (1 host per rack)
  EXPECT_NE(a / 2, b / 2);  // different power feeds (2 racks per feed)
}

TEST(Controller, RejectsMismatchedHello) {
  IncrementalController controller{ControllerConfig{}};
  EXPECT_THROW(
      controller.apply(HelloFrame{kProtocolVersion + 1, 0, "peer"}),
      std::runtime_error);
  EXPECT_THROW(controller.apply(HelloFrame{kProtocolVersion, 0x1234, "peer"}),
               std::runtime_error);
  // A matching hash (or 0 = unchecked) is accepted.
  controller.apply(
      HelloFrame{kProtocolVersion, fleet_config_hash(ControllerConfig{}), ""});
}

}  // namespace
}  // namespace vmcw::service

// ----------------------------------------------------- engine entry points

namespace vmcw {
namespace {

TEST(EngineOnline, AdmitOneVmLeavesResidentsInPlace) {
  const auto spec = scaled_down(banking_spec(), 24, 168);
  ConsolidationEngine::Config config;
  config.settings = testing::small_settings();
  ConsolidationEngine engine(config);
  engine.observe(generate_datacenter(spec, 42));

  const auto rec = engine.recommend(Strategy::kSemiStatic);
  ASSERT_TRUE(rec.has_value());
  const Placement& residents = rec->schedule.back();
  const std::size_t n = residents.vm_count();

  const VmWorkload newcomer = testing::constant_vm("newcomer", 0.5, 512, 168);
  const auto admission = engine.admit_one_vm(*rec, newcomer);
  ASSERT_TRUE(admission.has_value());
  ASSERT_EQ(admission->placement.vm_count(), n + 1);
  EXPECT_EQ(admission->placement.host_of(n),
            static_cast<std::int32_t>(admission->host));
  for (std::size_t vm = 0; vm < n; ++vm)
    EXPECT_EQ(admission->placement.host_of(vm), residents.host_of(vm));
}

TEST(EngineOnline, PartialReplanAccountsItsMoves) {
  const auto spec = scaled_down(banking_spec(), 24, 168);
  ConsolidationEngine::Config config;
  config.settings = testing::small_settings();
  ConsolidationEngine engine(config);
  engine.observe(generate_datacenter(spec, 42));

  auto rec = engine.recommend(Strategy::kSemiStatic);
  ASSERT_TRUE(rec.has_value());
  const std::size_t migrations_before = rec->total_migrations;

  const RepairOutcome outcome =
      engine.partial_replan(*rec, /*hour=*/0, /*drain_below=*/0.5);
  EXPECT_EQ(rec->total_migrations,
            migrations_before + outcome.repair_moves.size() +
                outcome.drain_moves.size());
  // Every VM is still placed after the in-place repair.
  const Placement& placed = rec->schedule.back();
  for (std::size_t vm = 0; vm < placed.vm_count(); ++vm)
    EXPECT_NE(placed.host_of(vm), Placement::kUnplaced);
}

}  // namespace
}  // namespace vmcw
