// Tests for the parallel experiment runtime: thread pool semantics
// (drain-on-shutdown, exception propagation, nesting) and the determinism
// contract — identical results at 1, 2 and 8 threads for the sweep driver,
// the study driver and the monitoring pipeline.

#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/study.h"
#include "engine/engine.h"
#include "monitoring/pipeline.h"
#include "sweep/sweep.h"
#include "runtime/telemetry.h"
#include "test_helpers.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

using testing::small_settings;

// ---------------------------------------------------------------- pool ----

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  ThreadPool pool(4);
  std::vector<int> out(1000, -1);
  parallel_for(0, out.size(),
               [&](std::size_t i) { out[i] = static_cast<int>(i) * 3; },
               &pool);
  for (std::size_t i = 0; i < out.size(); ++i)
    ASSERT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(5, 5, [&](std::size_t) { touched = true; }, &pool);
  EXPECT_FALSE(touched);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(parallel_for(0, 100,
                            [](std::size_t i) {
                              if (i == 37)
                                throw std::runtime_error("index 37 failed");
                            },
                            &pool),
               std::runtime_error);
}

TEST(ThreadPool, TaskGroupRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  TaskGroup group(&pool);
  for (int i = 1; i <= 64; ++i)
    group.run([&sum, i] { sum += i; });
  group.wait();
  EXPECT_EQ(sum.load(), 64 * 65 / 2);
}

TEST(ThreadPool, TaskGroupPropagatesFirstException) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> completed{0};
  group.run([] { throw std::logic_error("task failed"); });
  for (int i = 0; i < 8; ++i)
    group.run([&completed] { ++completed; });
  EXPECT_THROW(group.wait(), std::logic_error);
  EXPECT_EQ(completed.load(), 8);  // siblings still ran to completion
}

TEST(ThreadPool, ShutdownDrainsQueuedTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i)
      pool.submit([&ran] { ++ran; });
    // Destructor must finish every queued task before joining.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> leaves{0};
  parallel_for(0, 8,
               [&](std::size_t) {
                 parallel_for(0, 8, [&](std::size_t) { ++leaves; }, &pool, 1);
               },
               &pool, 1);
  EXPECT_EQ(leaves.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolStillCompletesGroups) {
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 16; ++i) group.run([&ran] { ++ran; });
  group.wait();
  EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPool, VmcwThreadsEnvControlsDefaultConcurrency) {
  ::setenv("VMCW_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_concurrency(), 3u);
  ::setenv("VMCW_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
  ::unsetenv("VMCW_THREADS");
  EXPECT_GE(ThreadPool::default_concurrency(), 1u);
}

// ----------------------------------------------------------- telemetry ----

TEST(Telemetry, CountersAccumulate) {
  MetricsRegistry registry;
  registry.add_counter("cells");
  registry.add_counter("cells", 4);
  EXPECT_EQ(registry.counter("cells"), 5u);
  EXPECT_EQ(registry.counter("unknown"), 0u);
}

TEST(Telemetry, HistogramTracksMoments) {
  MetricsRegistry registry;
  registry.observe("span", 1.0);
  registry.observe("span", 3.0);
  const auto h = registry.histogram("span");
  EXPECT_EQ(h.count, 2u);
  EXPECT_DOUBLE_EQ(h.sum, 4.0);
  EXPECT_DOUBLE_EQ(h.min, 1.0);
  EXPECT_DOUBLE_EQ(h.max, 3.0);
}

TEST(Telemetry, JsonContainsBothSections) {
  MetricsRegistry registry;
  registry.add_counter("emulate.runs", 2);
  registry.observe("emulate.wall_seconds", 0.25);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"emulate.runs\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"emulate.wall_seconds\""), std::string::npos);
}

TEST(Telemetry, StopwatchRecordsASpan) {
  MetricsRegistry registry;
  {
    Stopwatch watch("phase.seconds", &registry);
  }
  const auto h = registry.histogram("phase.seconds");
  EXPECT_EQ(h.count, 1u);
  EXPECT_GE(h.sum, 0.0);
}

// --------------------------------------------------------- determinism ----

void expect_reports_identical(const EmulationReport& a,
                              const EmulationReport& b) {
  EXPECT_EQ(a.eval_hours, b.eval_hours);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
  EXPECT_EQ(a.active_hosts_per_interval, b.active_hosts_per_interval);
  EXPECT_EQ(a.host_avg_cpu_util, b.host_avg_cpu_util);
  EXPECT_EQ(a.host_peak_cpu_util, b.host_peak_cpu_util);
  EXPECT_EQ(a.cpu_contention_samples, b.cpu_contention_samples);
  EXPECT_EQ(a.mem_contention_samples, b.mem_contention_samples);
  EXPECT_EQ(a.hours_with_contention, b.hours_with_contention);
  EXPECT_EQ(a.vm_contention_hours, b.vm_contention_hours);
  EXPECT_EQ(a.total_vm_contention_hours, b.total_vm_contention_hours);
  EXPECT_EQ(a.energy_wh, b.energy_wh);  // bit-identical, not approximate
}

std::vector<SweepCell> small_grid() {
  const WorkloadSpec specs[] = {
      scaled_down(banking_spec(), 16, 168),
      scaled_down(airlines_spec(), 16, 168),
  };
  const StudySettings settings[] = {small_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kDynamic};
  const std::uint64_t seeds[] = {7, 99};
  return SweepDriver::grid(specs, settings, strategies, seeds);
}

TEST(SweepDriver, GridIsCartesianRowMajor) {
  const auto cells = small_grid();
  ASSERT_EQ(cells.size(), 2u * 1u * 2u * 2u);
  EXPECT_EQ(cells[0].spec.industry, "Banking");
  EXPECT_EQ(cells[0].strategy, Strategy::kSemiStatic);
  EXPECT_EQ(cells[0].seed, 7u);
  EXPECT_EQ(cells[1].seed, 99u);
  EXPECT_EQ(cells.back().spec.industry, "Airlines");
  EXPECT_EQ(cells.back().strategy, Strategy::kDynamic);
}

TEST(SweepDriver, BitIdenticalAcrossThreadCounts) {
  const auto cells = small_grid();

  std::vector<std::vector<SweepCellResult>> runs;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);  // nested phases use the same pool
    runs.push_back(SweepDriver(&pool).run(cells));
  }

  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      const auto& a = runs[0][i];
      const auto& b = runs[r][i];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.workload, b.workload);
      EXPECT_EQ(a.strategy, b.strategy);
      EXPECT_EQ(a.planned, b.planned);
      EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
      EXPECT_EQ(a.total_migrations, b.total_migrations);
      expect_reports_identical(a.report, b.report);
    }
  }
  // Sanity: the grid actually planned something.
  EXPECT_TRUE(runs[0][0].planned);
  EXPECT_GT(runs[0][0].provisioned_hosts, 0u);
}

TEST(Study, RunStudyBitIdenticalAcrossThreadCounts) {
  const auto dc =
      generate_datacenter(scaled_down(banking_spec(), 60, 168), 42);

  std::vector<StudyResult> results;
  for (const std::size_t threads : {1u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    results.push_back(run_study(dc, small_settings()));
  }

  ASSERT_EQ(results[0].results.size(), results[1].results.size());
  for (std::size_t i = 0; i < results[0].results.size(); ++i) {
    const auto& a = results[0].results[i];
    const auto& b = results[1].results[i];
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
    EXPECT_EQ(a.space_cost, b.space_cost);
    EXPECT_EQ(a.power_cost, b.power_cost);
    EXPECT_EQ(a.migrations_per_interval, b.migrations_per_interval);
    EXPECT_EQ(a.total_migrations, b.total_migrations);
    expect_reports_identical(a.emulation, b.emulation);
  }
}

TEST(Study, SensitivitySweepBitIdenticalAcrossThreadCounts) {
  const auto dc =
      generate_datacenter(scaled_down(banking_spec(), 40, 168), 42);
  const std::vector<double> bounds{0.6, 0.8, 1.0};

  std::vector<SensitivityResult> results;
  for (const std::size_t threads : {1u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    results.push_back(sensitivity_sweep(dc, small_settings(), bounds));
  }

  EXPECT_EQ(results[0].semi_static_hosts, results[1].semi_static_hosts);
  EXPECT_EQ(results[0].stochastic_hosts, results[1].stochastic_hosts);
  ASSERT_EQ(results[0].dynamic_points.size(), results[1].dynamic_points.size());
  for (std::size_t i = 0; i < results[0].dynamic_points.size(); ++i) {
    EXPECT_EQ(results[0].dynamic_points[i].utilization_bound,
              results[1].dynamic_points[i].utilization_bound);
    EXPECT_EQ(results[0].dynamic_points[i].dynamic_hosts,
              results[1].dynamic_points[i].dynamic_hosts);
  }
}

TEST(Pipeline, CollectDatacenterBitIdenticalAcrossThreadCounts) {
  const auto dc =
      generate_datacenter(scaled_down(beverage_spec(), 24, 168), 11);

  std::vector<Datacenter> views;
  for (const std::size_t threads : {1u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const auto warehouse = collect_datacenter(dc, AgentConfig{}, 1);
    views.push_back(reconstruct_datacenter(dc, warehouse));
  }

  ASSERT_EQ(views[0].servers.size(), views[1].servers.size());
  for (std::size_t s = 0; s < views[0].servers.size(); ++s) {
    const auto& a = views[0].servers[s];
    const auto& b = views[1].servers[s];
    ASSERT_EQ(a.cpu_util.size(), b.cpu_util.size());
    for (std::size_t t = 0; t < a.cpu_util.size(); ++t)
      ASSERT_EQ(a.cpu_util[t], b.cpu_util[t]);
    ASSERT_EQ(a.mem_mb.size(), b.mem_mb.size());
    for (std::size_t t = 0; t < a.mem_mb.size(); ++t)
      ASSERT_EQ(a.mem_mb[t], b.mem_mb[t]);
  }
}

}  // namespace
}  // namespace vmcw
