// Unit tests for util/stats.h.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace vmcw {
namespace {

const std::vector<double> kEmpty;
const std::vector<double> kSingle{4.0};
const std::vector<double> kRamp{1, 2, 3, 4, 5};

TEST(Mean, KnownValues) {
  EXPECT_DOUBLE_EQ(mean(kEmpty), 0.0);
  EXPECT_DOUBLE_EQ(mean(kSingle), 4.0);
  EXPECT_DOUBLE_EQ(mean(kRamp), 3.0);
}

TEST(Peak, KnownValues) {
  EXPECT_DOUBLE_EQ(peak(kEmpty), 0.0);
  EXPECT_DOUBLE_EQ(peak(kRamp), 5.0);
  const std::vector<double> negatives{-5, -2, -9};
  EXPECT_DOUBLE_EQ(peak(negatives), -2.0);  // not clamped to 0
}

TEST(Minimum, KnownValues) {
  EXPECT_DOUBLE_EQ(minimum(kEmpty), 0.0);
  EXPECT_DOUBLE_EQ(minimum(kRamp), 1.0);
  const std::vector<double> negatives{-5, -2, -9};
  EXPECT_DOUBLE_EQ(minimum(negatives), -9.0);
}

TEST(Stddev, KnownValues) {
  EXPECT_DOUBLE_EQ(stddev(kEmpty), 0.0);
  EXPECT_DOUBLE_EQ(stddev(kSingle), 0.0);
  EXPECT_NEAR(stddev(kRamp), std::sqrt(2.0), 1e-12);  // population stddev
  const std::vector<double> constant{7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(stddev(constant), 0.0);
}

TEST(CoV, KnownValues) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation(kEmpty), 0.0);
  EXPECT_NEAR(coefficient_of_variation(kRamp), std::sqrt(2.0) / 3.0, 1e-12);
  const std::vector<double> zeros{0, 0, 0};
  EXPECT_DOUBLE_EQ(coefficient_of_variation(zeros), 0.0);  // no div by 0
}

TEST(PeakToAverage, KnownValues) {
  EXPECT_DOUBLE_EQ(peak_to_average(kEmpty), 0.0);
  EXPECT_DOUBLE_EQ(peak_to_average(kRamp), 5.0 / 3.0);
  const std::vector<double> constant{2, 2, 2};
  EXPECT_DOUBLE_EQ(peak_to_average(constant), 1.0);
}

TEST(Percentile, InterpolatesLinearly) {
  EXPECT_DOUBLE_EQ(percentile(kRamp, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(kRamp, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(kRamp, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(kRamp, 25), 2.0);
  EXPECT_DOUBLE_EQ(percentile(kRamp, 90), 4.6);
}

TEST(Percentile, UnsortedInputHandled) {
  const std::vector<double> shuffled{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(percentile(shuffled, 50), 3.0);
}

TEST(Percentile, EdgeCases) {
  EXPECT_DOUBLE_EQ(percentile(kEmpty, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile(kSingle, 50), 4.0);
  EXPECT_DOUBLE_EQ(percentile(kRamp, -10), 1.0);   // clamped
  EXPECT_DOUBLE_EQ(percentile(kRamp, 110), 5.0);   // clamped
}

TEST(PercentileSorted, MatchesPercentile) {
  const std::vector<double> sorted{1, 2, 3, 4, 5};
  for (double p : {0.0, 10.0, 33.0, 50.0, 77.7, 100.0})
    EXPECT_DOUBLE_EQ(percentile_sorted(sorted, p), percentile(sorted, p));
}

TEST(PearsonCorrelation, PerfectCorrelations) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{2, 4, 6, 8};
  const std::vector<double> z{8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(x, z), -1.0, 1e-12);
}

TEST(PearsonCorrelation, DegenerateInputs) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> constant{5, 5, 5};
  const std::vector<double> shorter{1, 2};
  EXPECT_DOUBLE_EQ(pearson_correlation(x, constant), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation(x, shorter), 0.0);
  EXPECT_DOUBLE_EQ(pearson_correlation(kEmpty, kEmpty), 0.0);
}

TEST(Summarize, FieldsConsistent) {
  const auto s = summarize(kRamp);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_GE(s.p90, s.p50);
  EXPECT_GE(s.p99, s.p90);
}

TEST(Summarize, Empty) {
  const auto s = summarize(kEmpty);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(ElementwiseSum, RaggedSeriesZeroPadded) {
  const std::vector<std::vector<double>> series{{1, 2, 3}, {10, 20}, {100}};
  const auto total = elementwise_sum(series);
  ASSERT_EQ(total.size(), 3u);
  EXPECT_DOUBLE_EQ(total[0], 111.0);
  EXPECT_DOUBLE_EQ(total[1], 22.0);
  EXPECT_DOUBLE_EQ(total[2], 3.0);
}

TEST(ElementwiseSum, EmptyInput) {
  EXPECT_TRUE(elementwise_sum({}).empty());
}

}  // namespace
}  // namespace vmcw
