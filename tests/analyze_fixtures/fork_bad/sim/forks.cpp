// Trigger fixture: sibling fork-key collisions and an untracked root.
namespace vmcw {

void collide(Rng& root) {
  Rng a = root.fork("alpha");
  Rng b = root.fork("alpha");
  Rng c = root.fork("host-" + std::to_string(3));
  Rng d = root.fork("host-7");
}

void overlap(Rng& parent) {
  Rng a = parent.fork("rack/" + std::to_string(1));
  Rng b = parent.fork("rack/" + std::to_string(2));
}

void untracked() {
  Rng x = mystery.fork("beta");
}

}  // namespace vmcw
