// Pass fixture: distinct sibling keys, disjoint dynamic-suffix prefixes,
// and every receiver is a tracked Rng (local, parameter, or a member
// declared in the paired header).
#include "sim/streams.h"

namespace vmcw {

void spawn(Rng& root) {
  Rng estate = root.fork("estate");
  Rng chaos = root.fork("chaos");
  Rng hosts = root.fork("host-" + std::to_string(1));
  Rng racks = root.fork("rack-" + std::to_string(2));
}

void members(StreamFarm& farm) {
  Rng a = farm.master_.fork("alpha");
  Rng b = farm.master_.fork("beta");
}

}  // namespace vmcw
