#pragma once

namespace vmcw {

struct StreamFarm {
  Rng master_;
};

}  // namespace vmcw
