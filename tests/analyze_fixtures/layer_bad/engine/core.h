#pragma once

namespace vmcw {}
