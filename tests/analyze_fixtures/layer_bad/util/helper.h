#pragma once

#include "engine/core.h"

namespace vmcw {}
