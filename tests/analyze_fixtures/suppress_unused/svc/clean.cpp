// A suppression that no longer suppresses anything must be deleted.
namespace vmcw {

int answer() {
  return 42;  // vmcw-lint: allow(durable-write) nothing here any more
}

}  // namespace vmcw
