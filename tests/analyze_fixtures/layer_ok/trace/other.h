#pragma once

namespace vmcw {}
