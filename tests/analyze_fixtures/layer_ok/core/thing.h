#pragma once

#include "trace/other.h"

namespace vmcw {}
