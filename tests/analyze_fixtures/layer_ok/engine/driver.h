#pragma once

#include "util/bits.h"

namespace vmcw {}
