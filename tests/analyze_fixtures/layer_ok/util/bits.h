#pragma once

namespace vmcw {}
