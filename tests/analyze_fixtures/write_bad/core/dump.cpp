// Trigger fixture: raw durable writes outside the sanctioned idioms.
#include <cstdio>
#include <fstream>

namespace vmcw {

void dump_everything(std::FILE* sink) {
  std::ofstream out("cells.csv");
  ::write(1, "x", 1);
  std::FILE* f = std::fopen("report.bin", "wb");
  std::fwrite("x", 1, 1, f);
}

}  // namespace vmcw
