// Pass fixture: every path agrees on the order map_mu_ -> io_mu_ ->
// scan_mu_, including the VMCW_REQUIRES-annotated leg.
#include "svc/state.h"

namespace vmcw {

void Journal::append() {
  MutexLock lk(io_mu_);
}

void Journal::rotate() VMCW_REQUIRES(io_mu_) {
  MutexLock s(scan_mu_);
}

void Registry::publish() {
  MutexLock a(map_mu_);
  Journal j;
  j.append();
}

void touch_registry() {
  Registry r;
  r.publish();
}

}  // namespace vmcw
