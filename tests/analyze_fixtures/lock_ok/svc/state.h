#pragma once

namespace vmcw {

class Journal {
 public:
  void append();
  void rotate();

 private:
  Mutex io_mu_;
  Mutex scan_mu_;
};

class Registry {
 public:
  void publish();

 private:
  Mutex map_mu_;
};

}  // namespace vmcw
