// Pass fixture: durable bytes flow through the sanctioned atomic writer;
// member functions NAMED write/open (and qualified calls to them) are not
// raw write sites.
#include <sstream>

namespace vmcw {

bool export_cells(const std::string& path) {
  std::ostringstream out;
  out << "id,util\n";
  return write_file_atomic(path, out.str());
}

void Daemon::open(const std::string& path) {
  journal_.replay(path);
}

}  // namespace vmcw
