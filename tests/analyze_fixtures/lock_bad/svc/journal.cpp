// Half of the cross-TU deadlock: append() holds io_mu_ and reaches
// Registry::map_mu_ through touch_registry's acquisition closure.
#include "svc/state.h"

namespace vmcw {

void touch_registry();

void Journal::append() {
  MutexLock lk(io_mu_);
  touch_registry();
}

void Journal::rotate() {
  MutexLock lk(io_mu_);
}

}  // namespace vmcw
