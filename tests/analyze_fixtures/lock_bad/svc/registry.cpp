// The other half: publish() holds map_mu_ and reaches Journal::io_mu_
// through rotate() — the opposite order from journal.cpp, hence a cycle.
#include "svc/state.h"

namespace vmcw {

void Registry::publish() {
  MutexLock lk(map_mu_);
  Journal j;
  j.rotate();
}

void touch_registry() {
  Registry r;
  r.publish();
}

}  // namespace vmcw
