#pragma once

#include "cyc/a.h"
