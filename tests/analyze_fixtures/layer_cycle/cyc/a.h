#pragma once

#include "cyc/b.h"
