// Whole-file allow: stands in for a sanctioned durable-write implementation.
#include <cstdio>

namespace vmcw {

void persist(const char* path) {
  std::FILE* f = std::fopen(path, "wb");
  std::fclose(f);
}

}  // namespace vmcw
