// The self-pipe wake byte is not durable I/O; the inline suppression is
// declared in the fixture config's allow-inline budget.
namespace vmcw {

void wake(int fd) {
  ::write(fd, "w", 1);  // vmcw-lint: allow(durable-write) self-pipe wake byte
}

}  // namespace vmcw
