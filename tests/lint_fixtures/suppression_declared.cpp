// Fixture: an inline suppression declared in the config must silence the
// violation entirely.
#include <cstdint>
#include "util/rng.h"

double root_draw(std::uint64_t seed) {
  vmcw::Rng root(seed);  // vmcw-lint: allow(rng-construction) fixture root
  return root.uniform();
}
