// Fixture: every construct here must trigger nondeterministic-rng.
#include <random>

int entropy() {
  std::random_device rd;            // line 5: random_device
  std::mt19937 engine(rd());        // line 6: <random> engine
  srand(42);                        // line 7: srand
  return rand() % 10;               // line 8: rand()
}
