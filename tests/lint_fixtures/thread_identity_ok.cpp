// Fixture: sizing work from the task index, not the thread, is the
// contract-compliant pattern.
#include <cstddef>

std::size_t slot_for(std::size_t task_index, std::size_t stride) {
  return task_index * stride;
}
