// Fixture: lookups into unordered containers are fine; iterating an
// ordered map is fine.
#include <map>
#include <string>
#include <unordered_map>

double pick(const std::unordered_map<std::string, double>& index,
            const std::map<std::string, double>& ordered) {
  double sum = index.count("a") ? index.at("a") : 0;
  for (const auto& [name, w] : ordered) sum += w;
  return sum;
}
