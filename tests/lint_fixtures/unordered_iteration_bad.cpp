// Fixture: range-for over an unordered container must trigger.
#include <string>
#include <unordered_map>

double total(const std::unordered_map<std::string, double>& weights) {
  double sum = 0;
  for (const auto& [name, w] : weights) sum += w;  // line 7
  return sum;
}
