// Fixture: each declaration here is shared mutable state and must trigger.
#include <atomic>

int g_counter = 0;                         // line 4: namespace-scope
static double g_scale = 1.0;               // line 5: static
thread_local int tl_depth = 0;             // line 6: thread_local
std::atomic<int> g_flag{0};                // line 7: brace-init global

namespace nested {
int g_inner = 7;                           // line 10: inside namespace
}

int bump() {
  static int calls = 0;                    // line 14: function-local static
  return ++calls + g_counter;
}
