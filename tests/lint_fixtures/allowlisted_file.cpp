// Fixture: a whole-file allow entry in the config silences the rule with
// no inline comment needed.
#include <chrono>

double span_seconds() {
  auto a = std::chrono::steady_clock::now();
  auto b = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(b - a).count();
}
