// Fixture: wall-clock reads in result-affecting code must trigger.
#include <chrono>
#include <ctime>

long stamp() {
  auto now = std::chrono::system_clock::now();        // line 6
  auto mono = std::chrono::steady_clock::now();       // line 7
  std::time_t t = std::time(nullptr);                 // line 8
  (void)now; (void)mono;
  return static_cast<long>(t);
}
