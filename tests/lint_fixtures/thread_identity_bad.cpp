// Fixture: observing thread identity / count must trigger.
#include <cstdlib>
#include <thread>

unsigned shards() {
  auto id = std::this_thread::get_id();                  // line 6
  (void)id;
  const char* env = std::getenv("VMCW_THREADS");         // line 8
  if (env) return 2;
  return std::thread::hardware_concurrency();            // line 10
}
