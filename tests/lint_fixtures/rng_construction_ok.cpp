// Fixture: forked streams, references and declarations must pass.
#include "util/rng.h"

namespace vmcw {
Rng make_child(const Rng& parent);  // declaration returning Rng is fine

double walk(Rng& parent) {
  Rng child = parent.fork("walk");      // keyed fork: the sanctioned path
  Rng grand = child.fork();             // sequential fork
  return grand.uniform();
}
}  // namespace vmcw
