// Fixture: simulated time is fine — only real clock reads are banned.
long simulated_hours(long intervals, long hours_per_interval) {
  long sim_time = intervals * hours_per_interval;  // 'time' in a name is ok
  return sim_time;
}
