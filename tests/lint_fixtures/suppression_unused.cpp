// Fixture: a suppression that matches nothing must surface as
// unused-suppression so stale escapes get deleted.
int honest() {
  // vmcw-lint: allow(wall-clock) nothing here reads a clock
  return 1;
}
