// Fixture: determinism-contract-compliant randomness must pass.
#include "util/rng.h"

double sample(vmcw::Rng& parent) {
  vmcw::Rng stream = parent.fork("sample");
  double brand = 0.25;  // idents containing 'rand' are not rand()
  return stream.uniform() + brand;
}
