// Fixture: constants, functions and locals must all pass.
#include <string>

constexpr int kAnswer = 42;
const double kScale = 1.5;
static const char* const kName = "vmcw";
static constexpr double kPi = 3.14159;

namespace detail {
inline constexpr int kInner = 1;
}

int add(int a, int b) {
  int local = a + b;  // plain locals are fine
  return local + kAnswer;
}

std::string greet(const std::string& who) { return "hi " + who; }
