// Fixture: an inline suppression NOT declared in the config must surface
// as undeclared-suppression (and still silence the original rule).
#include <cstdlib>

int sneaky() {
  srand(1);  // vmcw-lint: allow(nondeterministic-rng) not in config
  return 0;
}
