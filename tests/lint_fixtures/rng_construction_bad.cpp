// Fixture: constructing Rng from raw seeds outside util/rng must trigger.
#include <cstdint>
#include "util/rng.h"

double draw(std::uint64_t seed) {
  vmcw::Rng rng(seed);                    // line 6: raw-seed construction
  vmcw::Rng copy = vmcw::Rng(seed + 1);   // line 7: temporary
  return rng.uniform() + copy.uniform();
}
