// Fixture-driven tests for tools/vmcw_lint: one fixture per contract rule
// that must trigger it and one that must pass, plus the suppression and
// allowlist machinery. These pin the rules so they can't silently rot —
// if a rule stops firing (or starts over-firing), a fixture here fails
// before the vmcw_lint_src gate goes quietly toothless.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace {

using vmcw::lint::Config;
using vmcw::lint::Violation;

std::string fixture_path(const std::string& name) {
  return std::string(VMCW_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << name;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Config fixtures_config() {
  Config config;
  std::string error;
  EXPECT_TRUE(Config::parse(read_fixture("fixtures.conf"), config, &error))
      << error;
  return config;
}

std::vector<Violation> lint_fixture(const std::string& name,
                                    const Config& config) {
  return vmcw::lint::lint_file(name, read_fixture(name), config);
}

std::vector<Violation> lint_fixture(const std::string& name) {
  return lint_fixture(name, Config{});
}

/// (rule, line) pairs of the violations, sorted for order-free comparison.
std::vector<std::pair<std::string, std::size_t>> rule_lines(
    const std::vector<Violation>& violations) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const Violation& v : violations) out.emplace_back(v.rule, v.line);
  std::sort(out.begin(), out.end());
  return out;
}

using Expected = std::vector<std::pair<std::string, std::size_t>>;

TEST(LintRules, NondeterministicRngTriggers) {
  const Expected expected = {{"nondeterministic-rng", 5},
                             {"nondeterministic-rng", 6},
                             {"nondeterministic-rng", 7},
                             {"nondeterministic-rng", 8}};
  EXPECT_EQ(rule_lines(lint_fixture("nondeterministic_rng_bad.cpp")),
            expected);
}

TEST(LintRules, NondeterministicRngPassesForkedStreams) {
  EXPECT_TRUE(lint_fixture("nondeterministic_rng_ok.cpp").empty());
}

TEST(LintRules, WallClockTriggers) {
  const Expected expected = {
      {"wall-clock", 6}, {"wall-clock", 7}, {"wall-clock", 8}};
  EXPECT_EQ(rule_lines(lint_fixture("wall_clock_bad.cpp")), expected);
}

TEST(LintRules, WallClockPassesSimulatedTime) {
  EXPECT_TRUE(lint_fixture("wall_clock_ok.cpp").empty());
}

TEST(LintRules, UnorderedIterationTriggers) {
  const Expected expected = {{"unordered-iteration", 7}};
  EXPECT_EQ(rule_lines(lint_fixture("unordered_iteration_bad.cpp")),
            expected);
}

TEST(LintRules, UnorderedIterationPassesLookupsAndOrderedMaps) {
  EXPECT_TRUE(lint_fixture("unordered_iteration_ok.cpp").empty());
}

TEST(LintRules, ThreadIdentityTriggers) {
  const Expected expected = {{"thread-identity", 6},
                             {"thread-identity", 8},
                             {"thread-identity", 10}};
  EXPECT_EQ(rule_lines(lint_fixture("thread_identity_bad.cpp")), expected);
}

TEST(LintRules, ThreadIdentityPassesTaskIndexedWork) {
  EXPECT_TRUE(lint_fixture("thread_identity_ok.cpp").empty());
}

TEST(LintRules, MutableGlobalTriggers) {
  const Expected expected = {
      {"mutable-global", 4},   // namespace-scope int
      {"mutable-global", 5},   // static double
      {"mutable-global", 6},   // thread_local
      {"mutable-global", 7},   // brace-initialized atomic
      {"mutable-global", 10},  // inside a named namespace
      {"mutable-global", 14},  // function-local static
  };
  EXPECT_EQ(rule_lines(lint_fixture("mutable_global_bad.cpp")), expected);
}

TEST(LintRules, MutableGlobalPassesConstantsAndLocals) {
  EXPECT_TRUE(lint_fixture("mutable_global_ok.cpp").empty());
}

TEST(LintRules, RngConstructionTriggers) {
  const Expected expected = {{"rng-construction", 6},
                             {"rng-construction", 7}};
  EXPECT_EQ(rule_lines(lint_fixture("rng_construction_bad.cpp")), expected);
}

TEST(LintRules, RngConstructionPassesForksAndDeclarations) {
  EXPECT_TRUE(lint_fixture("rng_construction_ok.cpp").empty());
}

// --- suppression + allowlist machinery ------------------------------------

TEST(LintSuppressions, DeclaredInlineSuppressionSilences) {
  EXPECT_TRUE(
      lint_fixture("suppression_declared.cpp", fixtures_config()).empty());
}

TEST(LintSuppressions, UndeclaredSuppressionIsItselfAViolation) {
  // The srand violation is silenced, but the suppression has no
  // allow-inline entry — the escape hatch reports itself.
  const Expected expected = {{"undeclared-suppression", 6}};
  EXPECT_EQ(rule_lines(lint_fixture("suppression_undeclared.cpp",
                                    fixtures_config())),
            expected);
}

TEST(LintSuppressions, StaleSuppressionIsItselfAViolation) {
  const Expected expected = {{"unused-suppression", 4}};
  EXPECT_EQ(
      rule_lines(lint_fixture("suppression_unused.cpp", fixtures_config())),
      expected);
}

TEST(LintSuppressions, WholeFileAllowEntrySilencesRule) {
  EXPECT_TRUE(
      lint_fixture("allowlisted_file.cpp", fixtures_config()).empty());
  // Without the config entry the same file trips wall-clock.
  EXPECT_FALSE(lint_fixture("allowlisted_file.cpp").empty());
}

// --- config parsing --------------------------------------------------------

TEST(LintConfig, ParseRejectsMissingJustification) {
  Config config;
  std::string error;
  EXPECT_FALSE(
      Config::parse("allow foo.cpp wall-clock --\n", config, &error));
  EXPECT_NE(error.find("justification"), std::string::npos) << error;
}

TEST(LintConfig, ParseRejectsUnknownRule) {
  Config config;
  std::string error;
  EXPECT_FALSE(
      Config::parse("allow foo.cpp no-such-rule -- why\n", config, &error));
  EXPECT_NE(error.find("unknown rule"), std::string::npos) << error;
}

TEST(LintConfig, ParseRejectsUnknownDirective) {
  Config config;
  std::string error;
  EXPECT_FALSE(Config::parse("deny foo.cpp wall-clock -- why\n", config,
                             &error));
  EXPECT_NE(error.find("unknown directive"), std::string::npos) << error;
}

TEST(LintConfig, ParseAcceptsCommentsAndBlankLines) {
  Config config;
  std::string error;
  EXPECT_TRUE(Config::parse(
      "# comment\n\nallow a.cpp wall-clock -- reason words\n"
      "allow-inline b/*.cpp rng-construction -- another reason\n",
      config, &error))
      << error;
  ASSERT_EQ(config.allow.size(), 1u);
  ASSERT_EQ(config.allow_inline.size(), 1u);
  EXPECT_TRUE(config.allows("a.cpp", "wall-clock"));
  EXPECT_FALSE(config.allows("a.cpp", "thread-identity"));
  EXPECT_TRUE(config.allows_inline("b/x.cpp", "rng-construction"));
  EXPECT_FALSE(config.allows_inline("c/x.cpp", "rng-construction"));
}

TEST(LintConfig, GlobMatchCrossesDirectories) {
  EXPECT_TRUE(vmcw::lint::glob_match("runtime/*.cpp", "runtime/sweep.cpp"));
  EXPECT_TRUE(vmcw::lint::glob_match("*", "anything/at/all.h"));
  EXPECT_TRUE(vmcw::lint::glob_match("a/*/c.h", "a/b/x/c.h"));
  EXPECT_FALSE(vmcw::lint::glob_match("runtime/*.cpp", "chaos/plan.cpp"));
  EXPECT_FALSE(vmcw::lint::glob_match("a.cpp", "ab.cpp"));
}

// --- directory walking -----------------------------------------------------

TEST(LintPaths, WalksFixtureTreeDeterministically) {
  const Config config = fixtures_config();
  std::string error;
  const std::vector<Violation> first =
      vmcw::lint::lint_paths(VMCW_LINT_FIXTURE_DIR, {"."}, config, &error);
  ASSERT_TRUE(error.empty()) << error;
  const std::vector<Violation> second =
      vmcw::lint::lint_paths(VMCW_LINT_FIXTURE_DIR, {"."}, config, &error);
  ASSERT_TRUE(error.empty()) << error;

  // Two walks are byte-identical, and reported paths are root-relative so
  // the config globs match regardless of where the tree lives on disk.
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].file, second[i].file);
    EXPECT_EQ(first[i].line, second[i].line);
    EXPECT_EQ(first[i].rule, second[i].rule);
  }

  // Exactly the bad fixtures plus the two suppression meta-violations
  // surface; every ok/declared/allowlisted fixture stays silent.
  std::set<std::string> files;
  for (const Violation& v : first) files.insert(v.file);
  const std::set<std::string> expected = {
      "mutable_global_bad.cpp",      "nondeterministic_rng_bad.cpp",
      "rng_construction_bad.cpp",    "suppression_undeclared.cpp",
      "suppression_unused.cpp",      "thread_identity_bad.cpp",
      "unordered_iteration_bad.cpp", "wall_clock_bad.cpp"};
  EXPECT_EQ(files, expected);
  EXPECT_EQ(first.size(), 21u);
}

TEST(LintPaths, MissingPathReportsError) {
  std::string error;
  vmcw::lint::lint_paths(VMCW_LINT_FIXTURE_DIR, {"no_such_dir"}, Config{},
                         &error);
  EXPECT_FALSE(error.empty());
}

}  // namespace
