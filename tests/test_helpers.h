// Shared fixtures for planner/emulator tests: small deterministic fleets.
#pragma once

#include <string>
#include <vector>

#include "core/settings.h"
#include "core/vm.h"
#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw::testing {

/// Settings scaled to short traces: 5 days of history, 2 days of
/// evaluation, 2-hour intervals (24 intervals).
inline StudySettings small_settings() {
  StudySettings s;
  s.history_hours = 120;
  s.eval_hours = 48;
  s.interval_hours = 2;
  return s;
}

/// A small generated fleet with the Banking character (bursty CPU).
inline std::vector<VmWorkload> small_fleet(int servers = 60,
                                           std::uint64_t seed = 42) {
  const auto spec = scaled_down(banking_spec(), servers, 168);
  return to_vm_workloads(generate_datacenter(spec, seed));
}

/// One VM with constant demand.
inline VmWorkload constant_vm(const std::string& id, double cpu_rpe2,
                              double mem_mb, std::size_t hours) {
  VmWorkload vm;
  vm.id = id;
  vm.cpu_rpe2 = TimeSeries(std::vector<double>(hours, cpu_rpe2));
  vm.mem_mb = TimeSeries(std::vector<double>(hours, mem_mb));
  return vm;
}

}  // namespace vmcw::testing
