// Unit + property tests for the stochastic (PCP) packer.

#include "core/pcp.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace vmcw {
namespace {

constexpr ResourceVector kCap{100.0, 1000.0};

StochasticItem item(double body_cpu, double tail_cpu, std::size_t cluster,
                    double body_mem = 10, double tail_mem = 0) {
  return StochasticItem{{body_cpu, body_mem}, {tail_cpu, tail_mem}, cluster};
}

TEST(PcpEnvelope, SameClusterTailsAdd) {
  const std::vector<StochasticItem> items{item(10, 20, 0), item(10, 30, 0)};
  const std::vector<std::size_t> members{0, 1};
  const auto env = pcp_envelope(items, members);
  EXPECT_DOUBLE_EQ(env.cpu_rpe2, 10 + 10 + 20 + 30);
}

TEST(PcpEnvelope, DifferentClustersTakeWorstTail) {
  const std::vector<StochasticItem> items{item(10, 20, 0), item(10, 30, 1)};
  const std::vector<std::size_t> members{0, 1};
  const auto env = pcp_envelope(items, members);
  EXPECT_DOUBLE_EQ(env.cpu_rpe2, 10 + 10 + 30);
}

TEST(PcpEnvelope, PerDimensionWorstCluster) {
  // Cluster 0 dominates CPU tails, cluster 1 dominates memory tails; the
  // envelope takes each dimension's own worst cluster.
  const std::vector<StochasticItem> items{
      item(10, 50, 0, 10, 0),
      item(10, 5, 1, 10, 100),
  };
  const std::vector<std::size_t> members{0, 1};
  const auto env = pcp_envelope(items, members);
  EXPECT_DOUBLE_EQ(env.cpu_rpe2, 20 + 50);
  EXPECT_DOUBLE_EQ(env.memory_mb, 20 + 100);
}

TEST(PcpPack, EmptyInput) {
  const auto result = pcp_pack({}, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hosts_used, 0u);
}

TEST(PcpPack, EnvelopeRespectedOnEveryHost) {
  Rng rng(3);
  std::vector<StochasticItem> items;
  for (int i = 0; i < 150; ++i) {
    items.push_back(item(rng.uniform(1, 30), rng.uniform(0, 40),
                         static_cast<std::size_t>(rng.uniform_int(0, 4)),
                         rng.uniform(5, 200), rng.uniform(0, 100)));
  }
  const auto result = pcp_pack(items, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.placed_count(), items.size());
  const auto by_host = result->placement.vms_by_host();
  for (const auto& members : by_host) {
    if (members.empty()) continue;
    EXPECT_TRUE(pcp_envelope(items, members).fits_within(kCap));
  }
}

TEST(PcpPack, AntiCorrelatedTailsShareHostsBetterThanFfd) {
  // 10 VMs in 5 distinct clusters, each body 10 / tail 50. PCP needs
  // body*10 + max tail = 150 CPU -> 2 hosts of 100. FFD at max sizing
  // (60 each) needs 10*60/100 = 6 hosts.
  std::vector<StochasticItem> items;
  std::vector<ResourceVector> max_sizes;
  for (int i = 0; i < 10; ++i) {
    items.push_back(item(10, 50, static_cast<std::size_t>(i % 5)));
    max_sizes.push_back({60, 10});
  }
  const auto pcp = pcp_pack(items, kCap);
  const auto ffd = ffd_pack(max_sizes, kCap);
  ASSERT_TRUE(pcp && ffd);
  EXPECT_LT(pcp->hosts_used, ffd->hosts_used);
}

TEST(PcpPack, SingleClusterDegeneratesToMaxSizing) {
  // All VMs peak together: PCP must provision body+tail for all, matching
  // FFD on (body+tail) sizes.
  std::vector<StochasticItem> items;
  std::vector<ResourceVector> max_sizes;
  for (int i = 0; i < 12; ++i) {
    items.push_back(item(20, 20, 0));
    max_sizes.push_back({40, 10});
  }
  const auto pcp = pcp_pack(items, kCap);
  const auto ffd = ffd_pack(max_sizes, kCap);
  ASSERT_TRUE(pcp && ffd);
  EXPECT_EQ(pcp->hosts_used, ffd->hosts_used);
}

TEST(PcpPack, OversizedItemFails) {
  const std::vector<StochasticItem> items{item(80, 30, 0)};
  EXPECT_FALSE(pcp_pack(items, kCap).has_value());
}

TEST(PcpPack, ConstraintsHonored) {
  std::vector<StochasticItem> items;
  for (int i = 0; i < 6; ++i) items.push_back(item(10, 5, 0));
  ConstraintSet cs(6);
  cs.add_anti_affinity(0, 1);
  cs.add_affinity(2, 3);
  cs.pin(4, 2);
  const auto result = pcp_pack(items, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(cs.satisfied_by(result->placement));
  EXPECT_NE(result->placement.host_of(0), result->placement.host_of(1));
  EXPECT_EQ(result->placement.host_of(2), result->placement.host_of(3));
  EXPECT_EQ(result->placement.host_of(4), 2);
}

TEST(PcpPack, PinnedVmClaimsHostBeforeFreeVms) {
  // Regression twin of FfdPack.PinnedVmClaimsHostBeforeFreeVms.
  std::vector<StochasticItem> items{item(60, 30, 0), item(60, 30, 1),
                                    item(10, 5, 2)};
  ConstraintSet cs(3);
  cs.pin(2, 0);
  const auto result = pcp_pack(items, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.host_of(2), 0);
  EXPECT_TRUE(cs.satisfied_by(result->placement));
}

TEST(PcpPack, InfeasibleConstraintsRejected) {
  std::vector<StochasticItem> items{item(10, 5, 0), item(10, 5, 0)};
  ConstraintSet cs(2);
  cs.add_affinity(0, 1);
  cs.add_anti_affinity(0, 1);
  EXPECT_FALSE(pcp_pack(items, kCap, cs).has_value());
}

TEST(MakeStochasticItems, BodyTailFromHistory) {
  // One VM with a flat series + spike; body should be ~flat level.
  VmWorkload vm;
  std::vector<double> cpu(100, 10.0);
  cpu[50] = 100.0;
  vm.cpu_rpe2 = TimeSeries(cpu);
  vm.mem_mb = TimeSeries(std::vector<double>(100, 256.0));
  const std::vector<VmWorkload> vms{vm};

  const auto items = make_stochastic_items(vms, 0, 100, 90.0);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_NEAR(items[0].body.cpu_rpe2, 10.0, 1.0);
  EXPECT_NEAR(items[0].body.cpu_rpe2 + items[0].tail.cpu_rpe2, 100.0, 1e-9);
  // Flat memory: body == max, zero tail regardless of percentile.
  EXPECT_DOUBLE_EQ(items[0].body.memory_mb, 256.0);
  EXPECT_DOUBLE_EQ(items[0].tail.memory_mb, 0.0);
}

TEST(MakeStochasticItems, CoPeakingVmsShareCluster) {
  // Two VMs peaking at hour 10 daily; one peaking at hour 2.
  auto make_vm = [](std::size_t peak_hour) {
    VmWorkload vm;
    std::vector<double> cpu(240, 5.0);
    for (std::size_t d = 0; d < 10; ++d) cpu[d * 24 + peak_hour] = 50.0;
    vm.cpu_rpe2 = TimeSeries(cpu);
    vm.mem_mb = TimeSeries(std::vector<double>(240, 100.0));
    return vm;
  };
  const std::vector<VmWorkload> vms{make_vm(10), make_vm(11), make_vm(2)};
  const auto items = make_stochastic_items(vms, 0, 240);
  EXPECT_EQ(items[0].cluster, items[1].cluster);  // same 4h bucket (8-11)
  EXPECT_NE(items[0].cluster, items[2].cluster);
}

}  // namespace
}  // namespace vmcw
