// Unit tests for util/table.h.

#include "util/table.h"

#include <gtest/gtest.h>

namespace vmcw {
namespace {

TEST(TextTable, HeaderOnly) {
  TextTable t({"col1", "col2"});
  const std::string out = t.str();
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_NE(out.find("col2"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 0u);
}

TEST(TextTable, RowsAligned) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2"});
  const std::string out = t.str();
  // Both value cells must start at the same column.
  const auto line_start = [&](const std::string& needle) {
    const auto pos = out.find(needle);
    EXPECT_NE(pos, std::string::npos);
    return out.rfind('\n', pos) + 1;
  };
  const auto col_of = [&](const std::string& row_key,
                          const std::string& cell) {
    const auto start = line_start(row_key);
    return out.find(cell, start) - start;
  };
  EXPECT_EQ(col_of("x", "1"), col_of("longer-name", "2"));
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.str());
  EXPECT_NO_THROW(t.csv());
}

TEST(TextTable, LongRowsExtendColumns) {
  TextTable t({"a"});
  t.add_row({"1", "2", "3"});
  const std::string out = t.str();
  EXPECT_NE(out.find("3"), std::string::npos);
}

TEST(TextTable, NumericRowFormatting) {
  TextTable t({"label", "x", "y"});
  t.add_row_numeric("r", {1.23456, 2.0}, 2);
  const std::string out = t.str();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("2.00"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCells) {
  TextTable t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  t.add_row({"plain", "ok"});
  const std::string csv = t.csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(csv.find("plain,ok"), std::string::npos);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.0, 0), "3");
  EXPECT_EQ(fmt(-1.5, 1), "-1.5");
}

TEST(FmtPct, Formatting) {
  EXPECT_EQ(fmt_pct(0.125), "12.5%");
  EXPECT_EQ(fmt_pct(1.0, 0), "100%");
  EXPECT_EQ(fmt_pct(0.0), "0.0%");
}

}  // namespace
}  // namespace vmcw
