// Unit + property tests for the synthetic trace generator.

#include "trace/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "trace/presets.h"
#include "util/stats.h"

namespace vmcw {
namespace {

WorkloadSpec tiny_spec() {
  WorkloadSpec spec = scaled_down(banking_spec(), 40, 240);
  return spec;
}

TEST(Generator, Deterministic) {
  const auto spec = tiny_spec();
  const auto a = generate_datacenter(spec, 1);
  const auto b = generate_datacenter(spec, 1);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    ASSERT_EQ(a.servers[i].id, b.servers[i].id);
    ASSERT_EQ(a.servers[i].cpu_util.size(), b.servers[i].cpu_util.size());
    for (std::size_t t = 0; t < a.servers[i].cpu_util.size(); ++t) {
      ASSERT_DOUBLE_EQ(a.servers[i].cpu_util[t], b.servers[i].cpu_util[t]);
      ASSERT_DOUBLE_EQ(a.servers[i].mem_mb[t], b.servers[i].mem_mb[t]);
    }
  }
}

TEST(Generator, SeedChangesTraces) {
  const auto spec = tiny_spec();
  const auto a = generate_datacenter(spec, 1);
  const auto b = generate_datacenter(spec, 2);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.servers.size() && !any_diff; ++i)
    any_diff = a.servers[i].cpu_util[0] != b.servers[i].cpu_util[0];
  EXPECT_TRUE(any_diff);
}

TEST(Generator, ProducesRequestedShape) {
  const auto spec = tiny_spec();
  const auto dc = generate_datacenter(spec, 3);
  EXPECT_EQ(dc.servers.size(), 40u);
  EXPECT_EQ(dc.name, "A");
  EXPECT_EQ(dc.industry, "Banking");
  EXPECT_EQ(dc.hours(), 240u);
  for (const auto& s : dc.servers) {
    EXPECT_EQ(s.cpu_util.size(), 240u);
    EXPECT_EQ(s.mem_mb.size(), 240u);
    EXPECT_FALSE(s.id.empty());
  }
}

TEST(Generator, UtilizationWithinPhysicalBounds) {
  const auto dc = generate_datacenter(tiny_spec(), 4);
  for (const auto& s : dc.servers) {
    for (std::size_t t = 0; t < s.cpu_util.size(); ++t) {
      EXPECT_GT(s.cpu_util[t], 0.0);
      EXPECT_LE(s.cpu_util[t], 1.0);
      EXPECT_GE(s.mem_mb[t], 64.0);
      EXPECT_LE(s.mem_mb[t], s.spec.memory_mb);
    }
  }
}

TEST(Generator, ServerTracesStableAcrossFleetSize) {
  // Growing the fleet must not perturb existing servers' traces (streams
  // are keyed by server id).
  const auto small = generate_datacenter(scaled_down(banking_spec(), 10, 120), 5);
  const auto large = generate_datacenter(scaled_down(banking_spec(), 20, 120), 5);
  for (std::size_t i = 0; i < small.servers.size(); ++i) {
    ASSERT_EQ(small.servers[i].id, large.servers[i].id);
    for (std::size_t t = 0; t < 120; ++t)
      ASSERT_DOUBLE_EQ(small.servers[i].cpu_util[t],
                       large.servers[i].cpu_util[t]);
  }
}

class PresetFidelity : public ::testing::TestWithParam<const char*> {};

TEST_P(PresetFidelity, FleetMeanUtilNearTarget) {
  auto spec = scaled_down(workload_spec_by_name(GetParam()), 250,
                          kHoursPerMonth);
  const auto dc = generate_datacenter(spec, kStudySeed);
  // Fleet-average CPU utilization within 25% of the Table 2 target (the
  // saturation ceiling and lognormal dispersion shave a little off).
  EXPECT_NEAR(dc.average_cpu_utilization() / spec.target_avg_cpu_util, 1.0,
              0.25);
}

TEST_P(PresetFidelity, WebFractionNearTarget) {
  auto spec = scaled_down(workload_spec_by_name(GetParam()), 400, 48);
  const auto dc = generate_datacenter(spec, kStudySeed);
  EXPECT_NEAR(dc.web_fraction(), spec.web_fraction, 0.12);
}

TEST_P(PresetFidelity, MemoryLessBurstyThanCpu) {
  // Observation 2, per data center: median memory CoV is far below median
  // CPU CoV.
  auto spec = scaled_down(workload_spec_by_name(GetParam()), 150,
                          kHoursPerMonth);
  const auto dc = generate_datacenter(spec, kStudySeed);
  std::vector<double> cpu_cov, mem_cov;
  for (const auto& s : dc.servers) {
    cpu_cov.push_back(s.cpu_util.cov());
    mem_cov.push_back(s.mem_mb.cov());
  }
  EXPECT_LT(percentile(mem_cov, 50), 0.5 * percentile(cpu_cov, 50));
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetFidelity,
                         ::testing::Values("A", "B", "C", "D"));

TEST(Presets, LookupByNameAndIndustry) {
  EXPECT_EQ(workload_spec_by_name("A").industry, "Banking");
  EXPECT_EQ(workload_spec_by_name("Airlines").name, "B");
  EXPECT_THROW(workload_spec_by_name("nope"), std::invalid_argument);
}

TEST(Presets, TableTwoShape) {
  const auto specs = all_workload_specs();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].num_servers, 816);
  EXPECT_EQ(specs[1].num_servers, 445);
  EXPECT_EQ(specs[2].num_servers, 1390);
  EXPECT_EQ(specs[3].num_servers, 722);
  EXPECT_DOUBLE_EQ(specs[0].target_avg_cpu_util, 0.05);
  EXPECT_DOUBLE_EQ(specs[1].target_avg_cpu_util, 0.01);
  EXPECT_DOUBLE_EQ(specs[2].target_avg_cpu_util, 0.12);
  EXPECT_DOUBLE_EQ(specs[3].target_avg_cpu_util, 0.06);
}

TEST(Generator, AppSharedBurstsCorrelateAppMembers) {
  // Two servers of the same app must show correlated bursts; servers of
  // different apps much less so. Build one app context and two members.
  WorkloadSpec spec = tiny_spec();
  spec.shared_burst_fraction = 0.9;
  spec.web_cpu.bursts_per_day = 2.0;
  spec.web_cpu.diurnal_peak_mult = 1.0;  // isolate the burst component
  spec.web_cpu.ar1_sigma = 0.01;
  spec.web_cpu.ar1_sigma_dispersion = 0.0;

  Rng rng(77);
  const AppContext app = make_app_context(spec, WorkloadClass::kWeb, rng);
  Rng r1(1), r2(2), r3(3);
  const auto s1 = generate_server(spec, WorkloadClass::kWeb, "s1", r1, &app);
  const auto s2 = generate_server(spec, WorkloadClass::kWeb, "s2", r2, &app);
  const auto s3 = generate_server(spec, WorkloadClass::kWeb, "s3", r3, nullptr);

  const double same_app = pearson_correlation(s1.cpu_util.samples(),
                                              s2.cpu_util.samples());
  const double diff_app = pearson_correlation(s1.cpu_util.samples(),
                                              s3.cpu_util.samples());
  EXPECT_GT(same_app, 0.4);
  EXPECT_GT(same_app, diff_app + 0.2);
}

TEST(Generator, MemoryFollowsCpuForCoupledServers) {
  WorkloadSpec spec = tiny_spec();
  spec.web_mem.coupled_fraction = 0.8;
  spec.web_mem.coupled_fraction_sigma = 0.0;
  spec.web_mem.linear_coupling_probability = 0.0;
  spec.web_mem.ar1_sigma = 0.001;
  Rng rng(9);
  const auto s = generate_server(spec, WorkloadClass::kWeb, "s", rng);
  EXPECT_GT(pearson_correlation(s.cpu_util.samples(), s.mem_mb.samples()),
            0.5);
}

TEST(Datacenter, AggregateDemand) {
  const auto dc = generate_datacenter(tiny_spec(), 11);
  const auto agg = dc.aggregate_demand_at(0);
  double cpu = 0, mem = 0;
  for (const auto& s : dc.servers) {
    cpu += s.cpu_util[0] * s.spec.cpu_rpe2;
    mem += s.mem_mb[0];
  }
  EXPECT_NEAR(agg.cpu_rpe2, cpu, 1e-6);
  EXPECT_NEAR(agg.memory_mb, mem, 1e-6);
}

TEST(ServerTrace, CpuRpe2Conversion) {
  const auto dc = generate_datacenter(tiny_spec(), 12);
  const auto& s = dc.servers[0];
  const auto rpe2 = s.cpu_rpe2();
  ASSERT_EQ(rpe2.size(), s.cpu_util.size());
  for (std::size_t t = 0; t < rpe2.size(); ++t)
    EXPECT_DOUBLE_EQ(rpe2[t], s.cpu_util[t] * s.spec.cpu_rpe2);
}

}  // namespace
}  // namespace vmcw
