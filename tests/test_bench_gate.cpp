// Tests for the perf-regression gate (tools/bench_gate): sidecar parsing,
// key classification, and the tolerance-band comparison rules.

#include "gate.h"

#include <gtest/gtest.h>

#include <string>

namespace vmcw::bench_gate {
namespace {

const char* kSidecar = R"({
  "bench": "daemon_throughput",
  "wall_seconds": 0.8788,
  "decisions_per_sec": 44635.5,
  "frames": 26609,
  "decisions": 31510,
  "tick_p50_ms": 35.3998,
  "peak_rss_kb": 40820
}
)";

TEST(ParseSidecar, ReadsWriteBenchJsonOutput) {
  Sidecar sidecar;
  ASSERT_TRUE(parse_sidecar(kSidecar, sidecar));
  EXPECT_EQ(sidecar.bench, "daemon_throughput");
  EXPECT_DOUBLE_EQ(sidecar.metrics.at("wall_seconds"), 0.8788);
  EXPECT_DOUBLE_EQ(sidecar.metrics.at("decisions_per_sec"), 44635.5);
  EXPECT_DOUBLE_EQ(sidecar.metrics.at("frames"), 26609);
  EXPECT_DOUBLE_EQ(sidecar.metrics.at("peak_rss_kb"), 40820);
  EXPECT_EQ(sidecar.metrics.count("bench"), 0u);  // strings are not metrics
}

TEST(ParseSidecar, RejectsGarbage) {
  Sidecar sidecar;
  EXPECT_FALSE(parse_sidecar("", sidecar));
  EXPECT_FALSE(parse_sidecar("not json", sidecar));
  EXPECT_FALSE(parse_sidecar("{\"a\": }", sidecar));
  EXPECT_FALSE(parse_sidecar("{\"a\": 1", sidecar));
  EXPECT_TRUE(parse_sidecar("{}", sidecar));
}

TEST(KeyClassifiers, RouteKeysToTheRightRule) {
  EXPECT_TRUE(rate_key("decisions_per_sec"));
  EXPECT_TRUE(rate_key("packed_vms_per_sec"));
  EXPECT_FALSE(rate_key("wall_seconds"));
  EXPECT_TRUE(time_key("wall_seconds"));
  EXPECT_TRUE(time_key("tick_p99_ms"));
  EXPECT_TRUE(time_key("peak_rss_kb"));
  EXPECT_TRUE(structural_key("frames"));
  EXPECT_TRUE(structural_key("decisions"));
  EXPECT_TRUE(structural_key("hosts_used"));
  EXPECT_FALSE(structural_key("tick_p50_ms"));
  // The ceiling is a configuration echo, not a measurement: neither
  // structural nor judged.
  EXPECT_FALSE(structural_key("peak_rss_ceiling_kb"));
  EXPECT_FALSE(rate_key("peak_rss_ceiling_kb"));
}

Sidecar make_sidecar() {
  Sidecar s;
  s.bench = "t";
  s.metrics = {{"wall_seconds", 10.0},
               {"cells_per_sec", 100.0},
               {"frames", 500.0},
               {"peak_rss_kb", 1000.0}};
  return s;
}

TEST(Compare, PassesWithinTolerance) {
  const Sidecar base = make_sidecar();
  Sidecar fresh = make_sidecar();
  fresh.metrics["cells_per_sec"] = 80.0;   // -20%, tolerance 40%
  fresh.metrics["wall_seconds"] = 15.0;    // +50%, tolerance 100%
  const Comparison c = compare(base, fresh, GateOptions{});
  EXPECT_EQ(c.verdict, Verdict::kPass);
  EXPECT_FALSE(c.lines.empty());
}

TEST(Compare, FailsOnRateRegression) {
  const Sidecar base = make_sidecar();
  Sidecar fresh = make_sidecar();
  fresh.metrics["cells_per_sec"] = 50.0;  // halved: past the 40% band
  const Comparison c = compare(base, fresh, GateOptions{});
  EXPECT_EQ(c.verdict, Verdict::kFail);
}

TEST(Compare, FailsOnLatencyOrFootprintRegression) {
  const Sidecar base = make_sidecar();
  Sidecar slow = make_sidecar();
  slow.metrics["wall_seconds"] = 25.0;  // 2.5x: past the 100% band
  EXPECT_EQ(compare(base, slow, GateOptions{}).verdict, Verdict::kFail);

  Sidecar fat = make_sidecar();
  fat.metrics["peak_rss_kb"] = 5000.0;
  EXPECT_EQ(compare(base, fat, GateOptions{}).verdict, Verdict::kFail);
}

TEST(Compare, SkipsOnStructuralMismatch) {
  const Sidecar base = make_sidecar();
  Sidecar fresh = make_sidecar();
  fresh.metrics["frames"] = 250.0;         // different scale
  fresh.metrics["cells_per_sec"] = 1.0;    // would fail, but not comparable
  const Comparison c = compare(base, fresh, GateOptions{});
  EXPECT_EQ(c.verdict, Verdict::kSkippedScaleMismatch);
}

TEST(Compare, IgnoresKeysMissingFromEitherSide) {
  // Baselines may carry record-keeping keys (e.g. pre-optimization
  // latencies) that fresh runs do not emit; fresh runs may add metrics the
  // baseline predates. Neither should affect the verdict.
  Sidecar base = make_sidecar();
  base.metrics["tick_p50_ms_before_capacity_index"] = 79.6;
  Sidecar fresh = make_sidecar();
  fresh.metrics["new_metric_ms"] = 1e9;
  EXPECT_EQ(compare(base, fresh, GateOptions{}).verdict, Verdict::kPass);
}

TEST(Compare, TightenedToleranceCatchesSmallerDrops) {
  const Sidecar base = make_sidecar();
  Sidecar fresh = make_sidecar();
  fresh.metrics["cells_per_sec"] = 80.0;
  GateOptions strict;
  strict.rate_tolerance = 0.1;
  EXPECT_EQ(compare(base, fresh, strict).verdict, Verdict::kFail);
}

}  // namespace
}  // namespace vmcw::bench_gate
