// Fault-injection subsystem (src/chaos): deterministic fault schedules,
// failure-aware replay, and the determinism contract under faults.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/replay.h"
#include "core/emulator.h"
#include "core/migration_scheduler.h"
#include "runtime/sweep.h"
#include "runtime/thread_pool.h"
#include "test_helpers.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_settings;

// -- fixtures ---------------------------------------------------------

// `hosts` constant VMs, one per host, modest footprint (~10 fit per blade).
std::vector<VmWorkload> one_vm_per_host(std::size_t hosts,
                                        const StudySettings& settings) {
  std::vector<VmWorkload> vms;
  const std::size_t hours = settings.eval_end();
  for (std::size_t i = 0; i < hosts; ++i)
    vms.push_back(constant_vm("vm-" + std::to_string(i), 2000.0, 8000.0,
                              hours));
  return vms;
}

Placement spread(std::size_t vms) {
  Placement p(vms);
  for (std::size_t vm = 0; vm < vms; ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm));
  return p;
}

void expect_same_emulation(const EmulationReport& a, const EmulationReport& b) {
  EXPECT_EQ(a.eval_hours, b.eval_hours);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
  EXPECT_EQ(a.active_hosts_per_interval, b.active_hosts_per_interval);
  EXPECT_EQ(a.host_avg_cpu_util, b.host_avg_cpu_util);
  EXPECT_EQ(a.host_peak_cpu_util, b.host_peak_cpu_util);
  EXPECT_EQ(a.cpu_contention_samples, b.cpu_contention_samples);
  EXPECT_EQ(a.mem_contention_samples, b.mem_contention_samples);
  EXPECT_EQ(a.hours_with_contention, b.hours_with_contention);
  EXPECT_EQ(a.vm_contention_hours, b.vm_contention_hours);
  EXPECT_EQ(a.total_vm_contention_hours, b.total_vm_contention_hours);
  EXPECT_EQ(a.energy_wh, b.energy_wh);  // bitwise, not approximate
}

// -- FaultPlan generation ---------------------------------------------

TEST(FaultPlan, GenerateIsDeterministic) {
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  const auto a = FaultPlan::generate(spec, 32, settings, 7);
  const auto b = FaultPlan::generate(spec, 32, settings, 7);
  EXPECT_EQ(a.outages(), b.outages());
  EXPECT_EQ(a.stale_intervals(), b.stale_intervals());
  for (std::size_t vm = 0; vm < 40; ++vm)
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.migration_attempt_fails(vm, 3, attempt),
                b.migration_attempt_fails(vm, 3, attempt));
      EXPECT_EQ(a.migration_slowdown(vm, 3), b.migration_slowdown(vm, 3));
    }
}

TEST(FaultPlan, SeedsProduceDifferentSchedules) {
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  const auto a = FaultPlan::generate(spec, 32, settings, 7);
  const auto b = FaultPlan::generate(spec, 32, settings, 8);
  EXPECT_NE(a.outages(), b.outages());
}

TEST(FaultPlan, PerHostStreamsAreIndependent) {
  // Growing the fleet must not perturb the outage schedule of the hosts
  // that were already there (keyed forks per host).
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  const auto small = FaultPlan::generate(spec, 16, settings, 7);
  const auto large = FaultPlan::generate(spec, 24, settings, 7);
  std::vector<HostOutage> small_prefix;
  for (const auto& o : large.outages())
    if (o.host < 16) small_prefix.push_back(o);
  EXPECT_EQ(small.outages(), small_prefix);
}

TEST(FaultPlan, OutagesStayInsideEvaluationWindow) {
  const auto settings = small_settings();
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(1.0), 64, settings, 3);
  for (const auto& o : plan.outages()) {
    EXPECT_GE(o.down_from, settings.eval_begin());
    EXPECT_LT(o.down_from, settings.eval_end());
    EXPECT_GT(o.up_at, o.down_from);
  }
}

TEST(FaultPlan, IntensityZeroInjectsNothing) {
  const auto settings = small_settings();
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(0.0), 64, settings, 3);
  EXPECT_FALSE(plan.any());
  EXPECT_TRUE(plan.outages().empty());
  EXPECT_EQ(plan.stale_interval_count(), 0u);
  EXPECT_FALSE(plan.migration_attempt_fails(0, 0, 0));
  EXPECT_EQ(plan.migration_slowdown(0, 0), 1.0);
}

TEST(FaultPlan, ScriptedFaultsWork) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
  plan.add_outage(3, 100, 105);
  plan.force_stale(7);
  plan.force_migration_failures(11, 4, 2);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.host_down(3, 100));
  EXPECT_TRUE(plan.host_down(3, 104));
  EXPECT_FALSE(plan.host_down(3, 105));
  EXPECT_TRUE(plan.monitoring_stale(7));
  EXPECT_FALSE(plan.monitoring_stale(6));
  EXPECT_TRUE(plan.migration_attempt_fails(11, 4, 0));
  EXPECT_TRUE(plan.migration_attempt_fails(11, 4, 1));
  EXPECT_FALSE(plan.migration_attempt_fails(11, 4, 2));
  EXPECT_FALSE(plan.migration_attempt_fails(11, 5, 0));  // other interval
}

// -- retry scheduling -------------------------------------------------

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy policy;  // base 30, cap 480
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 30.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 60.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3), 120.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(5), 480.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(50), 480.0);
}

TEST(RetrySchedule, FailNTimesThenSucceed) {
  MigrationJob job;
  job.vm = 0;
  job.from = 0;
  job.to = 1;
  job.duration_s = 100.0;
  const std::vector<MigrationJob> jobs{job};
  RetryPolicy policy;
  const auto result = schedule_migrations_with_retries(
      jobs, 2, policy, 7200.0,
      [](std::size_t, int attempt) { return attempt < 2; });
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].attempts, 3);
  EXPECT_EQ(result.total_attempts, 3u);
  EXPECT_EQ(result.failed_attempts, 2u);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_EQ(result.abandoned, 0u);
  // 3 runs of 100 s + backoffs of 30 s and 60 s.
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_s, 390.0);
}

TEST(RetrySchedule, ExhaustsAttemptBudget) {
  MigrationJob job;
  job.duration_s = 100.0;
  job.from = 0;
  job.to = 1;
  const std::vector<MigrationJob> jobs{job};
  const auto result = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, 7200.0,
      [](std::size_t, int) { return true; });  // always fails
  EXPECT_FALSE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].attempts, 4);  // default max_attempts
  EXPECT_EQ(result.abandoned, 1u);
}

TEST(RetrySchedule, RespectsDeadline) {
  MigrationJob job;
  job.duration_s = 100.0;
  job.from = 0;
  job.to = 1;
  const std::vector<MigrationJob> jobs{job};
  const auto result = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, /*deadline_s=*/50.0,
      [](std::size_t, int) { return false; });
  // Cannot finish inside the deadline: deferred without burning an attempt.
  EXPECT_FALSE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].attempts, 0);
  EXPECT_EQ(result.abandoned, 1u);
}

TEST(RetrySchedule, SlowdownStretchesDuration) {
  MigrationJob job;
  job.duration_s = 100.0;
  job.from = 0;
  job.to = 1;
  const std::vector<MigrationJob> jobs{job};
  const auto result = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, 7200.0,
      [](std::size_t, int) { return false; },
      [](std::size_t) { return 3.0; });
  EXPECT_TRUE(result.jobs[0].completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_s, 300.0);
}

TEST(RetrySchedule, NoFaultsMatchesPlainScheduler) {
  // With no failures and no slowdowns, the retry scheduler is the plain
  // LJF list scheduler.
  std::vector<MigrationJob> jobs;
  for (int i = 0; i < 6; ++i) {
    MigrationJob job;
    job.vm = static_cast<std::size_t>(i);
    job.from = i % 2;
    job.to = 2 + i % 3;
    job.duration_s = 60.0 + 10.0 * i;
    jobs.push_back(job);
  }
  const auto plain = schedule_migrations(jobs, 2);
  const auto faulty = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, 7200.0,
      [](std::size_t, int) { return false; });
  EXPECT_EQ(faulty.total_attempts, jobs.size());
  EXPECT_EQ(faulty.retries, 0u);
  EXPECT_DOUBLE_EQ(faulty.makespan_s, plain.makespan_s);
}

// -- failure-aware replay ---------------------------------------------

TEST(ChaosReplay, NoFaultPlanReproducesEmulator) {
  // Acceptance: fault intensity 0 => replay is identical to emulate().
  const auto vms = testing::small_fleet(50, 11);
  const auto settings = small_settings();
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm % 8));
  const std::vector<Placement> schedule{p};

  const auto direct = emulate(vms, schedule, settings, false);
  const auto replayed =
      replay_under_faults(vms, schedule, settings, false, FaultPlan{});
  expect_same_emulation(direct, replayed.emulation);
  EXPECT_EQ(replayed.host_crashes, 0u);
  EXPECT_EQ(replayed.vm_downtime_hours, 0u);
  EXPECT_EQ(replayed.migration_retries, 0u);
  EXPECT_EQ(replayed.stale_intervals, 0u);
  EXPECT_TRUE(replayed.sla_violation_intervals.empty());
  EXPECT_DOUBLE_EQ(replayed.availability(), 1.0);
}

TEST(ChaosReplay, ZeroIntensityGeneratedPlanAlsoReproducesEmulator) {
  const auto vms = testing::small_fleet(50, 11);
  const auto settings = small_settings();
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm % 8));
  const std::vector<Placement> schedule{p};
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(0.0), 8, settings, 99);
  const auto direct = emulate(vms, schedule, settings, false);
  const auto replayed =
      replay_under_faults(vms, schedule, settings, false, plan);
  expect_same_emulation(direct, replayed.emulation);
}

TEST(ChaosReplay, CrashedHostIsEvacuatedMidInterval) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const std::vector<Placement> schedule{spread(vms.size())};

  FaultPlan plan;
  // Crash host 0 three hours into the window; hosts 1-3 have headroom.
  const std::size_t crash_hour = settings.eval_begin() + 3;
  plan.add_outage(0, crash_hour, crash_hour + 5);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  EXPECT_EQ(rob.host_crashes, 1u);
  EXPECT_EQ(rob.evacuations, 1u);
  EXPECT_EQ(rob.failed_evacuations, 0u);
  // The drain moved the VM before it lost an hour.
  EXPECT_EQ(rob.vm_downtime_hours, 0u);
  EXPECT_DOUBLE_EQ(rob.availability(), 1.0);
  EXPECT_DOUBLE_EQ(rob.capacity_lost_host_hours, 5.0);
}

TEST(ChaosReplay, FailedEvacuationCountsDowntime) {
  const auto settings = small_settings();
  // Every VM on one host: a crash has nowhere to drain to.
  const auto vms = one_vm_per_host(3, settings);
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm) p.assign(vm, 0);
  const std::vector<Placement> schedule{p};

  FaultPlan plan;
  const std::size_t crash_hour = settings.eval_begin() + 2;
  plan.add_outage(0, crash_hour, crash_hour + 4);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  EXPECT_EQ(rob.host_crashes, 1u);
  EXPECT_EQ(rob.evacuations, 0u);
  EXPECT_EQ(rob.failed_evacuations, 1u);
  EXPECT_EQ(rob.vm_downtime_hours, 3u * 4u);
  for (const auto hours : rob.vm_down_hours) EXPECT_EQ(hours, 4u);
  ASSERT_EQ(rob.sla_violation_intervals.size(), 1u);
  EXPECT_EQ(rob.sla_violation_intervals[0].first, crash_hour);
  EXPECT_EQ(rob.sla_violation_intervals[0].second, crash_hour + 4);
  EXPECT_LT(rob.availability(), 1.0);
}

// Dynamic-style schedule: vm 0 moves from host 0 to host 1 at interval 5.
std::vector<Placement> move_at_interval_5(std::size_t vms,
                                          const StudySettings& settings) {
  std::vector<Placement> schedule;
  for (std::size_t k = 0; k < settings.intervals(); ++k) {
    Placement p = spread(vms);
    if (k >= 5) p.assign(0, 1);
    schedule.push_back(std::move(p));
  }
  return schedule;
}

TEST(ChaosReplay, MigrationFailsTwiceThenSucceeds) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const auto schedule = move_at_interval_5(vms.size(), settings);

  FaultPlan plan;
  plan.force_migration_failures(0, 5, 2);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  EXPECT_EQ(rob.migration_attempts, 3u);
  EXPECT_EQ(rob.failed_migration_attempts, 2u);
  EXPECT_EQ(rob.migration_retries, 2u);
  EXPECT_EQ(rob.migrations_completed, 1u);
  EXPECT_EQ(rob.migrations_deferred, 0u);
  EXPECT_EQ(rob.vm_downtime_hours, 0u);

  // The retried replay still converges to the plan, so its final state
  // matches the fault-free replay's.
  const auto clean =
      replay_under_faults(vms, schedule, settings, false, FaultPlan{});
  expect_same_emulation(clean.emulation, rob.emulation);
}

TEST(ChaosReplay, ExhaustedMigrationIsDeferredToNextInterval) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const auto schedule = move_at_interval_5(vms.size(), settings);

  FaultPlan plan;
  plan.force_migration_failures(0, 5, 100);  // interval 5 never succeeds
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  // 4 failed attempts in interval 5 (abandoned), then success at 6.
  EXPECT_EQ(rob.migrations_deferred, 1u);
  EXPECT_EQ(rob.migrations_completed, 1u);
  EXPECT_EQ(rob.failed_migration_attempts, 4u);
  EXPECT_GE(rob.migration_attempts, 5u);
}

TEST(ChaosReplay, StaleTelemetryDefersThePlan) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const auto schedule = move_at_interval_5(vms.size(), settings);

  FaultPlan plan;
  plan.force_stale(5);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  // Degraded mode at interval 5 re-applies plan 4 (no move); the move
  // happens when telemetry recovers at interval 6.
  EXPECT_EQ(rob.stale_intervals, 1u);
  EXPECT_EQ(rob.migrations_completed, 1u);
  EXPECT_EQ(rob.vm_downtime_hours, 0u);
}

TEST(ChaosReplay, CrashOfMigrationTargetDefersJobs) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  // The plan moves vm 0 from host 0 to the (empty) host 4 at interval 5.
  std::vector<Placement> schedule;
  for (std::size_t k = 0; k < settings.intervals(); ++k) {
    Placement p = spread(vms.size());
    if (k >= 5) p.assign(0, 4);
    schedule.push_back(std::move(p));
  }

  FaultPlan plan;
  // Host 4 is down across the interval-5 boundary (hours 129-130; interval
  // 5 starts at hour 130), rebooting one hour into the interval.
  const std::size_t boundary =
      settings.eval_begin() + 5 * settings.interval_hours;
  plan.add_outage(4, boundary - 1, boundary + 1);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  // Host 4 was empty when it crashed: no evacuation, no downtime — but the
  // interval-5 job targeting it is deferred, then recomputed and completed
  // at interval 6.
  EXPECT_EQ(rob.host_crashes, 1u);
  EXPECT_EQ(rob.evacuations, 0u);
  EXPECT_EQ(rob.failed_evacuations, 0u);
  EXPECT_DOUBLE_EQ(rob.capacity_lost_host_hours, 0.0);
  EXPECT_EQ(rob.vm_downtime_hours, 0u);
  EXPECT_EQ(rob.migrations_deferred, 1u);
  EXPECT_EQ(rob.migrations_completed, 1u);
}

// -- determinism under faults -----------------------------------------

std::string chaos_fingerprint(const std::vector<SweepCellResult>& results) {
  std::string fp;
  char buffer[192];
  for (const auto& r : results) {
    const auto& rob = r.robustness;
    std::snprintf(buffer, sizeof(buffer),
                  "%zu|%d|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%a|%a;", r.index,
                  r.planned ? 1 : 0, rob.host_crashes, rob.evacuations,
                  rob.migration_attempts, rob.migration_retries,
                  rob.migrations_deferred, rob.stale_intervals,
                  rob.vm_downtime_hours, rob.capacity_lost_host_hours,
                  r.report.energy_wh);
    fp += buffer;
  }
  return fp;
}

TEST(ChaosDeterminism, SweepIdenticalAtAnyThreadCount) {
  std::vector<WorkloadSpec> specs{scaled_down(banking_spec(), 40, 168)};
  const StudySettings settings[] = {small_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kDynamic};
  const std::uint64_t seeds[] = {42};
  auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  for (auto& cell : cells) cell.faults = FaultSpec::at_intensity(1.0);

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const auto results = SweepDriver(&pool).run(cells);
    const std::string fp = chaos_fingerprint(results);
    if (reference.empty())
      reference = fp;
    else
      EXPECT_EQ(fp, reference) << "at " << threads << " threads";
  }
  EXPECT_FALSE(reference.empty());
}

TEST(ChaosDeterminism, FaultedSweepActuallyInjects) {
  std::vector<WorkloadSpec> specs{scaled_down(banking_spec(), 40, 168)};
  const StudySettings settings[] = {small_settings()};
  const Strategy strategies[] = {Strategy::kDynamic};
  const std::uint64_t seeds[] = {42};
  auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  for (auto& cell : cells) cell.faults = FaultSpec::at_intensity(1.0);
  const auto results = SweepDriver().run(cells);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].planned);
  const auto& rob = results[0].robustness;
  EXPECT_GT(rob.migration_attempts, 0u);
  EXPECT_GT(rob.stale_intervals, 0u);
}

}  // namespace
}  // namespace vmcw
