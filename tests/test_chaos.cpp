// Fault-injection subsystem (src/chaos): deterministic fault schedules,
// failure-aware replay, and the determinism contract under faults.

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "chaos/fault_plan.h"
#include "chaos/replay.h"
#include "core/emulator.h"
#include "core/migration_scheduler.h"
#include "sweep/sweep.h"
#include "runtime/thread_pool.h"
#include "test_helpers.h"
#include "topology/failure_domains.h"
#include "util/rng.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_settings;

// -- fixtures ---------------------------------------------------------

// `hosts` constant VMs, one per host, modest footprint (~10 fit per blade).
std::vector<VmWorkload> one_vm_per_host(std::size_t hosts,
                                        const StudySettings& settings) {
  std::vector<VmWorkload> vms;
  const std::size_t hours = settings.eval_end();
  for (std::size_t i = 0; i < hosts; ++i)
    vms.push_back(constant_vm("vm-" + std::to_string(i), 2000.0, 8000.0,
                              hours));
  return vms;
}

Placement spread(std::size_t vms) {
  Placement p(vms);
  for (std::size_t vm = 0; vm < vms; ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm));
  return p;
}

void expect_same_emulation(const EmulationReport& a, const EmulationReport& b) {
  EXPECT_EQ(a.eval_hours, b.eval_hours);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
  EXPECT_EQ(a.active_hosts_per_interval, b.active_hosts_per_interval);
  EXPECT_EQ(a.host_avg_cpu_util, b.host_avg_cpu_util);
  EXPECT_EQ(a.host_peak_cpu_util, b.host_peak_cpu_util);
  EXPECT_EQ(a.cpu_contention_samples, b.cpu_contention_samples);
  EXPECT_EQ(a.mem_contention_samples, b.mem_contention_samples);
  EXPECT_EQ(a.hours_with_contention, b.hours_with_contention);
  EXPECT_EQ(a.vm_contention_hours, b.vm_contention_hours);
  EXPECT_EQ(a.total_vm_contention_hours, b.total_vm_contention_hours);
  EXPECT_EQ(a.energy_wh, b.energy_wh);  // bitwise, not approximate
}

// -- FaultPlan generation ---------------------------------------------

TEST(FaultPlan, GenerateIsDeterministic) {
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  const auto a = FaultPlan::generate(spec, 32, settings, 7);
  const auto b = FaultPlan::generate(spec, 32, settings, 7);
  EXPECT_EQ(a.outages(), b.outages());
  EXPECT_EQ(a.stale_intervals(), b.stale_intervals());
  for (std::size_t vm = 0; vm < 40; ++vm)
    for (int attempt = 0; attempt < 4; ++attempt) {
      EXPECT_EQ(a.migration_attempt_fails(vm, 3, attempt),
                b.migration_attempt_fails(vm, 3, attempt));
      EXPECT_EQ(a.migration_slowdown(vm, 3), b.migration_slowdown(vm, 3));
    }
}

TEST(FaultPlan, SeedsProduceDifferentSchedules) {
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  const auto a = FaultPlan::generate(spec, 32, settings, 7);
  const auto b = FaultPlan::generate(spec, 32, settings, 8);
  EXPECT_NE(a.outages(), b.outages());
}

TEST(FaultPlan, PerHostStreamsAreIndependent) {
  // Growing the fleet must not perturb the outage schedule of the hosts
  // that were already there (keyed forks per host).
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  const auto small = FaultPlan::generate(spec, 16, settings, 7);
  const auto large = FaultPlan::generate(spec, 24, settings, 7);
  std::vector<HostOutage> small_prefix;
  for (const auto& o : large.outages())
    if (o.host < 16) small_prefix.push_back(o);
  EXPECT_EQ(small.outages(), small_prefix);
}

TEST(FaultPlan, OutagesStayInsideEvaluationWindow) {
  const auto settings = small_settings();
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(1.0), 64, settings, 3);
  for (const auto& o : plan.outages()) {
    EXPECT_GE(o.down_from, settings.eval_begin());
    EXPECT_LT(o.down_from, settings.eval_end());
    EXPECT_GT(o.up_at, o.down_from);
  }
}

TEST(FaultPlan, IntensityZeroInjectsNothing) {
  const auto settings = small_settings();
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(0.0), 64, settings, 3);
  EXPECT_FALSE(plan.any());
  EXPECT_TRUE(plan.outages().empty());
  EXPECT_EQ(plan.stale_interval_count(), 0u);
  EXPECT_FALSE(plan.migration_attempt_fails(0, 0, 0));
  EXPECT_EQ(plan.migration_slowdown(0, 0), 1.0);
}

TEST(FaultPlan, GeneratedScheduleMatchesPreTopologyBaseline) {
  // Golden pin, captured before the failure-domain layer existed: the
  // per-host and monitoring streams must stay byte-identical now that the
  // generator also knows about domain streams and validation.
  const auto settings = small_settings();
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(1.0), 32, settings, 7);
  std::string outage_string;
  char buf[128];
  for (const auto& o : plan.outages()) {
    std::snprintf(buf, sizeof buf, "%zu:%zu:%zu;", o.host, o.down_from,
                  o.up_at);
    outage_string += buf;
  }
  EXPECT_EQ(plan.outages().size(), 6u);
  EXPECT_EQ(hash64(outage_string), 0xd61325a0d2dcbc2cULL);
  std::string stale_bitmap;
  for (const auto v : plan.stale_intervals()) stale_bitmap += v ? '1' : '0';
  EXPECT_EQ(plan.stale_interval_count(), 8u);
  EXPECT_EQ(hash64(stale_bitmap), 0xfece26af1ed96089ULL);
  // Generated host outages are uncorrelated by definition.
  for (const auto& o : plan.outages()) {
    EXPECT_EQ(o.cause, OutageCause::kHost);
    EXPECT_EQ(o.domain, -1);
  }
}

TEST(FaultPlan, ZeroDomainRatesIgnoreTopology) {
  // Passing a topology without any domain rate must change nothing: the
  // domain streams are keyed forks, never drawn unless a rate asks.
  const auto settings = small_settings();
  const auto spec = FaultSpec::at_intensity(1.0);
  FailureDomainMap map =
      FailureDomainMap::generate(HostPool::uniform(settings.target), 32,
                                 TopologySpec{}, 5);
  const auto without = FaultPlan::generate(spec, 32, settings, 7);
  const auto with = FaultPlan::generate(spec, 32, settings, 7, &map);
  EXPECT_EQ(without.outages(), with.outages());
  EXPECT_EQ(without.stale_intervals(), with.stale_intervals());
}

TEST(FaultPlan, DomainOutagesAreSynchronizedAcrossMembers) {
  const auto settings = small_settings();
  FailureDomainMap map;
  // Two racks of three hosts, one power domain each.
  for (std::size_t h = 0; h < 6; ++h) map.assign(h, h / 3, h / 3);
  FaultSpec spec;
  spec.rack_outages_per_month = 40.0;  // dense enough to hit the window
  spec.domain_outage_hours_min = 2;
  spec.domain_outage_hours_max = 5;
  const auto plan = FaultPlan::generate(spec, 6, settings, 11);
  ASSERT_TRUE(plan.outages().empty());  // no topology, no domain faults
  const auto with = FaultPlan::generate(spec, 6, settings, 11, &map);
  ASSERT_FALSE(with.outages().empty());
  // Every outage is rack-caused, and each (domain, start) hits all three
  // members with one shared window.
  std::map<std::pair<std::int32_t, std::size_t>, std::vector<HostOutage>>
      incidents;
  for (const auto& o : with.outages()) {
    EXPECT_EQ(o.cause, OutageCause::kRack);
    incidents[{o.domain, o.down_from}].push_back(o);
  }
  for (const auto& [key, members] : incidents) {
    EXPECT_EQ(members.size(), 3u) << "rack " << key.first;
    for (const auto& o : members) {
      EXPECT_EQ(o.up_at, members[0].up_at);
      EXPECT_EQ(static_cast<std::int32_t>(o.host / 3), key.first);
    }
  }
}

TEST(FaultPlan, DomainStreamsAreIndependentOfSiblingDomains) {
  // Adding a rack must not perturb the outage schedule of the racks that
  // were already there (keyed fork per domain).
  const auto settings = small_settings();
  FaultSpec spec;
  spec.rack_outages_per_month = 40.0;
  FailureDomainMap two_racks, three_racks;
  for (std::size_t h = 0; h < 8; ++h) two_racks.assign(h, h / 4, 0);
  for (std::size_t h = 0; h < 12; ++h) three_racks.assign(h, h / 4, 0);
  const auto a = FaultPlan::generate(spec, 8, settings, 11, &two_racks);
  const auto b = FaultPlan::generate(spec, 12, settings, 11, &three_racks);
  std::vector<HostOutage> prefix;
  for (const auto& o : b.outages())
    if (o.host < 8) prefix.push_back(o);
  EXPECT_EQ(a.outages(), prefix);
}

TEST(FaultPlan, ValidationClampsNegativeRates) {
  FaultSpec spec;
  spec.host_crashes_per_month = -3.0;
  spec.migration_failure_rate = -0.5;
  spec.migration_slowdown_rate = -1.0;
  spec.monitoring_gap_rate = -0.25;
  spec.rack_outages_per_month = -2.0;
  spec.power_domain_outages_per_month = -7.0;
  const FaultSpec v = spec.validated();
  EXPECT_EQ(v.host_crashes_per_month, 0.0);
  EXPECT_EQ(v.migration_failure_rate, 0.0);
  EXPECT_EQ(v.migration_slowdown_rate, 0.0);
  EXPECT_EQ(v.monitoring_gap_rate, 0.0);
  EXPECT_EQ(v.rack_outages_per_month, 0.0);
  EXPECT_EQ(v.power_domain_outages_per_month, 0.0);
  // A hostile spec degrades to "inject nothing", not to a corrupt plan.
  const auto plan =
      FaultPlan::generate(spec, 16, testing::small_settings(), 3);
  EXPECT_TRUE(plan.outages().empty());
  EXPECT_EQ(plan.stale_interval_count(), 0u);
}

TEST(FaultPlan, ValidationOrdersInvertedRebootBounds) {
  FaultSpec spec;
  spec.reboot_hours_min = 10;
  spec.reboot_hours_max = 2;
  spec.domain_outage_hours_min = 9;
  spec.domain_outage_hours_max = 0;
  const FaultSpec v = spec.validated();
  EXPECT_EQ(v.reboot_hours_min, 10u);
  EXPECT_EQ(v.reboot_hours_max, 10u);
  EXPECT_EQ(v.domain_outage_hours_min, 9u);
  EXPECT_EQ(v.domain_outage_hours_max, 9u);
  // Every generated outage then lasts exactly the pinned duration.
  spec.host_crashes_per_month = 20.0;
  const auto plan =
      FaultPlan::generate(spec, 16, testing::small_settings(), 3);
  ASSERT_FALSE(plan.outages().empty());
  for (const auto& o : plan.outages()) EXPECT_EQ(o.up_at - o.down_from, 10u);
}

TEST(FaultPlan, ValidationClampsSlowdownBelowOne) {
  FaultSpec spec;
  spec.migration_slowdown_rate = 1.0;
  spec.migration_slowdown_max = 0.5;  // would *speed up* migrations
  EXPECT_EQ(spec.validated().migration_slowdown_max, 1.0);
  const auto plan =
      FaultPlan::generate(spec, 4, testing::small_settings(), 3);
  for (std::size_t vm = 0; vm < 8; ++vm)
    EXPECT_EQ(plan.migration_slowdown(vm, 2), 1.0);
}

TEST(FaultPlan, OverlappingOutagesMergeIntoOne) {
  // An independent crash inside an existing outage window is one
  // continuous outage — capacity lost must not double-count.
  FaultPlan plan;
  plan.add_outage(3, 100, 104);
  plan.add_outage(3, 102, 106);
  ASSERT_EQ(plan.outages().size(), 1u);
  EXPECT_EQ(plan.outages()[0].host, 3u);
  EXPECT_EQ(plan.outages()[0].down_from, 100u);
  EXPECT_EQ(plan.outages()[0].up_at, 106u);
  // A contained window disappears entirely.
  plan.add_outage(3, 101, 103);
  ASSERT_EQ(plan.outages().size(), 1u);
  EXPECT_EQ(plan.outages()[0].up_at, 106u);
  // Back-to-back windows stay distinct crashes.
  plan.add_outage(3, 106, 108);
  EXPECT_EQ(plan.outages().size(), 2u);
  // Other hosts are untouched.
  plan.add_outage(4, 101, 103);
  EXPECT_EQ(plan.outages().size(), 3u);
}

TEST(FaultPlan, ScriptedDomainOutageHitsEveryMember) {
  FailureDomainMap map;
  for (std::size_t h = 0; h < 6; ++h) map.assign(h, h / 3, 0);
  FaultPlan plan;
  plan.add_domain_outage(map, DomainKind::kRack, 1, 200, 204);
  ASSERT_EQ(plan.outages().size(), 3u);
  for (const auto& o : plan.outages()) {
    EXPECT_GE(o.host, 3u);
    EXPECT_EQ(o.down_from, 200u);
    EXPECT_EQ(o.up_at, 204u);
    EXPECT_EQ(o.cause, OutageCause::kRack);
    EXPECT_EQ(o.domain, 1);
  }
}

TEST(FaultPlan, ScriptedFaultsWork) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any());
  plan.add_outage(3, 100, 105);
  plan.force_stale(7);
  plan.force_migration_failures(11, 4, 2);
  EXPECT_TRUE(plan.any());
  EXPECT_TRUE(plan.host_down(3, 100));
  EXPECT_TRUE(plan.host_down(3, 104));
  EXPECT_FALSE(plan.host_down(3, 105));
  EXPECT_TRUE(plan.monitoring_stale(7));
  EXPECT_FALSE(plan.monitoring_stale(6));
  EXPECT_TRUE(plan.migration_attempt_fails(11, 4, 0));
  EXPECT_TRUE(plan.migration_attempt_fails(11, 4, 1));
  EXPECT_FALSE(plan.migration_attempt_fails(11, 4, 2));
  EXPECT_FALSE(plan.migration_attempt_fails(11, 5, 0));  // other interval
}

// -- retry scheduling -------------------------------------------------

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy policy;  // base 30, cap 480
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 30.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 60.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(3), 120.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(5), 480.0);
  EXPECT_DOUBLE_EQ(policy.backoff_for(50), 480.0);
}

TEST(RetrySchedule, FailNTimesThenSucceed) {
  MigrationJob job;
  job.vm = 0;
  job.from = 0;
  job.to = 1;
  job.duration_s = 100.0;
  const std::vector<MigrationJob> jobs{job};
  RetryPolicy policy;
  const auto result = schedule_migrations_with_retries(
      jobs, 2, policy, 7200.0,
      [](std::size_t, int attempt) { return attempt < 2; });
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].attempts, 3);
  EXPECT_EQ(result.total_attempts, 3u);
  EXPECT_EQ(result.failed_attempts, 2u);
  EXPECT_EQ(result.retries, 2u);
  EXPECT_EQ(result.abandoned, 0u);
  // 3 runs of 100 s + backoffs of 30 s and 60 s.
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_s, 390.0);
}

TEST(RetrySchedule, ExhaustsAttemptBudget) {
  MigrationJob job;
  job.duration_s = 100.0;
  job.from = 0;
  job.to = 1;
  const std::vector<MigrationJob> jobs{job};
  const auto result = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, 7200.0,
      [](std::size_t, int) { return true; });  // always fails
  EXPECT_FALSE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].attempts, 4);  // default max_attempts
  EXPECT_EQ(result.abandoned, 1u);
}

TEST(RetrySchedule, RespectsDeadline) {
  MigrationJob job;
  job.duration_s = 100.0;
  job.from = 0;
  job.to = 1;
  const std::vector<MigrationJob> jobs{job};
  const auto result = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, /*deadline_s=*/50.0,
      [](std::size_t, int) { return false; });
  // Cannot finish inside the deadline: deferred without burning an attempt.
  EXPECT_FALSE(result.jobs[0].completed);
  EXPECT_EQ(result.jobs[0].attempts, 0);
  EXPECT_EQ(result.abandoned, 1u);
}

TEST(RetrySchedule, SlowdownStretchesDuration) {
  MigrationJob job;
  job.duration_s = 100.0;
  job.from = 0;
  job.to = 1;
  const std::vector<MigrationJob> jobs{job};
  const auto result = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, 7200.0,
      [](std::size_t, int) { return false; },
      [](std::size_t) { return 3.0; });
  EXPECT_TRUE(result.jobs[0].completed);
  EXPECT_DOUBLE_EQ(result.jobs[0].finish_s, 300.0);
}

TEST(RetrySchedule, NoFaultsMatchesPlainScheduler) {
  // With no failures and no slowdowns, the retry scheduler is the plain
  // LJF list scheduler.
  std::vector<MigrationJob> jobs;
  for (int i = 0; i < 6; ++i) {
    MigrationJob job;
    job.vm = static_cast<std::size_t>(i);
    job.from = i % 2;
    job.to = 2 + i % 3;
    job.duration_s = 60.0 + 10.0 * i;
    jobs.push_back(job);
  }
  const auto plain = schedule_migrations(jobs, 2);
  const auto faulty = schedule_migrations_with_retries(
      jobs, 2, RetryPolicy{}, 7200.0,
      [](std::size_t, int) { return false; });
  EXPECT_EQ(faulty.total_attempts, jobs.size());
  EXPECT_EQ(faulty.retries, 0u);
  EXPECT_DOUBLE_EQ(faulty.makespan_s, plain.makespan_s);
}

// -- failure-aware replay ---------------------------------------------

TEST(ChaosReplay, NoFaultPlanReproducesEmulator) {
  // Acceptance: fault intensity 0 => replay is identical to emulate().
  const auto vms = testing::small_fleet(50, 11);
  const auto settings = small_settings();
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm % 8));
  const std::vector<Placement> schedule{p};

  const auto direct = emulate(vms, schedule, settings, false);
  const auto replayed =
      replay_under_faults(vms, schedule, settings, false, FaultPlan{});
  expect_same_emulation(direct, replayed.emulation);
  EXPECT_EQ(replayed.host_crashes, 0u);
  EXPECT_EQ(replayed.vm_downtime_hours, 0u);
  EXPECT_EQ(replayed.migration_retries, 0u);
  EXPECT_EQ(replayed.stale_intervals, 0u);
  EXPECT_TRUE(replayed.sla_violation_intervals.empty());
  EXPECT_DOUBLE_EQ(replayed.availability(), 1.0);
}

TEST(ChaosReplay, ZeroIntensityGeneratedPlanAlsoReproducesEmulator) {
  const auto vms = testing::small_fleet(50, 11);
  const auto settings = small_settings();
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm % 8));
  const std::vector<Placement> schedule{p};
  const auto plan =
      FaultPlan::generate(FaultSpec::at_intensity(0.0), 8, settings, 99);
  const auto direct = emulate(vms, schedule, settings, false);
  const auto replayed =
      replay_under_faults(vms, schedule, settings, false, plan);
  expect_same_emulation(direct, replayed.emulation);
}

TEST(ChaosReplay, CrashedHostIsEvacuatedMidInterval) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const std::vector<Placement> schedule{spread(vms.size())};

  FaultPlan plan;
  // Crash host 0 three hours into the window; hosts 1-3 have headroom.
  const std::size_t crash_hour = settings.eval_begin() + 3;
  plan.add_outage(0, crash_hour, crash_hour + 5);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  EXPECT_EQ(rob.host_crashes, 1u);
  EXPECT_EQ(rob.evacuations, 1u);
  EXPECT_EQ(rob.failed_evacuations, 0u);
  // The drain moved the VM before it lost an hour.
  EXPECT_EQ(rob.vm_downtime_hours, 0u);
  EXPECT_DOUBLE_EQ(rob.availability(), 1.0);
  EXPECT_DOUBLE_EQ(rob.capacity_lost_host_hours, 5.0);
}

TEST(ChaosReplay, FailedEvacuationCountsDowntime) {
  const auto settings = small_settings();
  // Every VM on one host: a crash has nowhere to drain to.
  const auto vms = one_vm_per_host(3, settings);
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm) p.assign(vm, 0);
  const std::vector<Placement> schedule{p};

  FaultPlan plan;
  const std::size_t crash_hour = settings.eval_begin() + 2;
  plan.add_outage(0, crash_hour, crash_hour + 4);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  EXPECT_EQ(rob.host_crashes, 1u);
  EXPECT_EQ(rob.evacuations, 0u);
  EXPECT_EQ(rob.failed_evacuations, 1u);
  EXPECT_EQ(rob.vm_downtime_hours, 3u * 4u);
  for (const auto hours : rob.vm_down_hours) EXPECT_EQ(hours, 4u);
  ASSERT_EQ(rob.sla_violation_intervals.size(), 1u);
  EXPECT_EQ(rob.sla_violation_intervals[0].first, crash_hour);
  EXPECT_EQ(rob.sla_violation_intervals[0].second, crash_hour + 4);
  EXPECT_LT(rob.availability(), 1.0);
}

// Dynamic-style schedule: vm 0 moves from host 0 to host 1 at interval 5.
std::vector<Placement> move_at_interval_5(std::size_t vms,
                                          const StudySettings& settings) {
  std::vector<Placement> schedule;
  for (std::size_t k = 0; k < settings.intervals(); ++k) {
    Placement p = spread(vms);
    if (k >= 5) p.assign(0, 1);
    schedule.push_back(std::move(p));
  }
  return schedule;
}

TEST(ChaosReplay, MigrationFailsTwiceThenSucceeds) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const auto schedule = move_at_interval_5(vms.size(), settings);

  FaultPlan plan;
  plan.force_migration_failures(0, 5, 2);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  EXPECT_EQ(rob.migration_attempts, 3u);
  EXPECT_EQ(rob.failed_migration_attempts, 2u);
  EXPECT_EQ(rob.migration_retries, 2u);
  EXPECT_EQ(rob.migrations_completed, 1u);
  EXPECT_EQ(rob.migrations_deferred, 0u);
  EXPECT_EQ(rob.vm_downtime_hours, 0u);

  // The retried replay still converges to the plan, so its final state
  // matches the fault-free replay's.
  const auto clean =
      replay_under_faults(vms, schedule, settings, false, FaultPlan{});
  expect_same_emulation(clean.emulation, rob.emulation);
}

TEST(ChaosReplay, ExhaustedMigrationIsDeferredToNextInterval) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const auto schedule = move_at_interval_5(vms.size(), settings);

  FaultPlan plan;
  plan.force_migration_failures(0, 5, 100);  // interval 5 never succeeds
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  // 4 failed attempts in interval 5 (abandoned), then success at 6.
  EXPECT_EQ(rob.migrations_deferred, 1u);
  EXPECT_EQ(rob.migrations_completed, 1u);
  EXPECT_EQ(rob.failed_migration_attempts, 4u);
  EXPECT_GE(rob.migration_attempts, 5u);
}

TEST(ChaosReplay, StaleTelemetryDefersThePlan) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  const auto schedule = move_at_interval_5(vms.size(), settings);

  FaultPlan plan;
  plan.force_stale(5);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  // Degraded mode at interval 5 re-applies plan 4 (no move); the move
  // happens when telemetry recovers at interval 6.
  EXPECT_EQ(rob.stale_intervals, 1u);
  EXPECT_EQ(rob.migrations_completed, 1u);
  EXPECT_EQ(rob.vm_downtime_hours, 0u);
}

TEST(ChaosReplay, CrashOfMigrationTargetDefersJobs) {
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(4, settings);
  // The plan moves vm 0 from host 0 to the (empty) host 4 at interval 5.
  std::vector<Placement> schedule;
  for (std::size_t k = 0; k < settings.intervals(); ++k) {
    Placement p = spread(vms.size());
    if (k >= 5) p.assign(0, 4);
    schedule.push_back(std::move(p));
  }

  FaultPlan plan;
  // Host 4 is down across the interval-5 boundary (hours 129-130; interval
  // 5 starts at hour 130), rebooting one hour into the interval.
  const std::size_t boundary =
      settings.eval_begin() + 5 * settings.interval_hours;
  plan.add_outage(4, boundary - 1, boundary + 1);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);

  // Host 4 was empty when it crashed: no evacuation, no downtime — but the
  // interval-5 job targeting it is deferred, then recomputed and completed
  // at interval 6.
  EXPECT_EQ(rob.host_crashes, 1u);
  EXPECT_EQ(rob.evacuations, 0u);
  EXPECT_EQ(rob.failed_evacuations, 0u);
  EXPECT_DOUBLE_EQ(rob.capacity_lost_host_hours, 0.0);
  EXPECT_EQ(rob.vm_downtime_hours, 0u);
  EXPECT_EQ(rob.migrations_deferred, 1u);
  EXPECT_EQ(rob.migrations_completed, 1u);
}

// -- determinism under faults -----------------------------------------

std::string chaos_fingerprint(const std::vector<SweepCellResult>& results) {
  std::string fp;
  char buffer[192];
  for (const auto& r : results) {
    const auto& rob = r.robustness;
    std::snprintf(buffer, sizeof(buffer),
                  "%zu|%d|%zu|%zu|%zu|%zu|%zu|%zu|%zu|%a|%a;", r.index,
                  r.planned ? 1 : 0, rob.host_crashes, rob.evacuations,
                  rob.migration_attempts, rob.migration_retries,
                  rob.migrations_deferred, rob.stale_intervals,
                  rob.vm_downtime_hours, rob.capacity_lost_host_hours,
                  r.report.energy_wh);
    fp += buffer;
  }
  return fp;
}

TEST(ChaosDeterminism, SweepIdenticalAtAnyThreadCount) {
  std::vector<WorkloadSpec> specs{scaled_down(banking_spec(), 40, 168)};
  const StudySettings settings[] = {small_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kDynamic};
  const std::uint64_t seeds[] = {42};
  auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  for (auto& cell : cells) cell.faults = FaultSpec::at_intensity(1.0);

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const auto results = SweepDriver(&pool).run(cells);
    const std::string fp = chaos_fingerprint(results);
    if (reference.empty())
      reference = fp;
    else
      EXPECT_EQ(fp, reference) << "at " << threads << " threads";
  }
  EXPECT_FALSE(reference.empty());
}

TEST(ChaosDeterminism, SweepFingerprintMatchesPreTopologyBaseline) {
  // Golden pin captured before the failure-domain layer: an uncorrelated
  // fault sweep must produce byte-identical robustness counters now.
  std::vector<WorkloadSpec> specs{scaled_down(banking_spec(), 40, 168)};
  const StudySettings settings[] = {small_settings()};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kDynamic};
  const std::uint64_t seeds[] = {42};
  auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  for (auto& cell : cells) cell.faults = FaultSpec::at_intensity(1.0);
  const auto results = SweepDriver().run(cells);
  EXPECT_EQ(chaos_fingerprint(results),
            "0|1|0|0|0|0|0|13|0|0x0p+0|0x1.bf0fdec326006p+13;"
            "1|1|0|0|122|36|0|13|0|0x0p+0|0x1.2ccfdec326005p+13;");
}

TEST(ChaosDeterminism, FailedEvacuationIdenticalAtAnyThreadCount) {
  // The zero-headroom crash path (failed evacuation, stranded VMs, SLA
  // window accounting) must not depend on the worker count either.
  const auto settings = small_settings();
  const auto vms = one_vm_per_host(3, settings);
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm) p.assign(vm, 0);
  const std::vector<Placement> schedule{p};
  FaultPlan plan;
  const std::size_t crash_hour = settings.eval_begin() + 2;
  plan.add_outage(0, crash_hour, crash_hour + 4);

  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const auto rob = replay_under_faults(vms, schedule, settings, false, plan);
    EXPECT_EQ(rob.failed_evacuations, 1u) << threads << " threads";
    EXPECT_EQ(rob.vm_downtime_hours, 3u * 4u) << threads << " threads";
    for (const auto hours : rob.vm_down_hours) EXPECT_EQ(hours, 4u);
    ASSERT_EQ(rob.sla_violation_intervals.size(), 1u) << threads << " threads";
    EXPECT_EQ(rob.sla_violation_intervals[0].first, crash_hour);
    EXPECT_EQ(rob.sla_violation_intervals[0].second, crash_hour + 4);
    EXPECT_EQ(rob.max_vms_down_simultaneously, 3u);
  }
}

// Extends chaos_fingerprint with the incident-level counters the
// correlated axis adds (count, worst recovery, blast radius, peak down).
std::string incident_fingerprint(const std::vector<SweepCellResult>& results) {
  std::string fp = chaos_fingerprint(results);
  char buffer[128];
  for (const auto& r : results) {
    const auto& rob = r.robustness;
    std::snprintf(buffer, sizeof(buffer), "%zu|%a|%a|%zu;",
                  rob.incidents.size(), rob.worst_incident_recovery_hours,
                  rob.max_app_blast_radius, rob.max_vms_down_simultaneously);
    fp += buffer;
  }
  return fp;
}

TEST(ChaosDeterminism, CorrelatedSweepIdenticalAtAnyThreadCount) {
  // Rack outages + domain-aware spread exercise the full new path:
  // fork("topology") map, per-domain outage streams, spread-constrained
  // planning, and incident accounting — all bit-identical at any
  // VMCW_THREADS.
  std::vector<WorkloadSpec> specs{scaled_down(banking_spec(), 40, 168)};
  StudySettings with_spread = small_settings();
  with_spread.domains.spread = true;
  const StudySettings settings[] = {small_settings(), with_spread};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kDynamic};
  const std::uint64_t seeds[] = {42};
  auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  // small_settings evaluates only 48 h; a realistic monthly rate would
  // leave most racks incident-free, so use a drill-level rate that puts
  // ~2 incidents in every rack's window.
  for (auto& cell : cells) {
    cell.faults.rack_outages_per_month = 30.0;
    cell.faults.domain_outage_hours_min = 2;
    cell.faults.domain_outage_hours_max = 6;
  }

  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const auto results = SweepDriver(&pool).run(cells);
    ASSERT_EQ(results.size(), cells.size());
    for (const auto& r : results) ASSERT_TRUE(r.planned) << r.index;
    // The correlated rates must actually produce incidents somewhere.
    std::size_t incidents = 0;
    for (const auto& r : results) incidents += r.robustness.incidents.size();
    EXPECT_GT(incidents, 0u);
    const std::string fp = incident_fingerprint(results);
    if (reference.empty())
      reference = fp;
    else
      EXPECT_EQ(fp, reference) << "at " << threads << " threads";
  }
  EXPECT_FALSE(reference.empty());
}

TEST(ChaosDeterminism, IncidentRecordsChargeDomainOutages) {
  // One scripted rack outage over a packed placement: the replay must
  // produce exactly one incident with full blast accounting.
  const auto settings = small_settings();
  auto vms = one_vm_per_host(4, settings);
  for (auto& vm : vms) vm.app = "app-a";  // one app, four replicas
  FailureDomainMap map;
  for (std::size_t h = 0; h < 8; ++h) map.assign(h, h / 2, 0);
  // Replicas packed pairwise: rack 0 holds hosts {0,1} = two replicas.
  Placement p(vms.size());
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    p.assign(vm, static_cast<std::int32_t>(vm));
  const std::vector<Placement> schedule{p};
  FaultPlan plan;
  const std::size_t hour = settings.eval_begin() + 3;
  plan.add_domain_outage(map, DomainKind::kRack, 0, hour, hour + 4);
  const auto rob = replay_under_faults(vms, schedule, settings, false, plan);
  ASSERT_EQ(rob.incidents.size(), 1u);
  const IncidentRecord& incident = rob.incidents[0];
  EXPECT_EQ(incident.cause, OutageCause::kRack);
  EXPECT_EQ(incident.domain, 0);
  EXPECT_EQ(incident.start_hour, hour);
  EXPECT_EQ(incident.hosts_lost, 2u);
  EXPECT_EQ(incident.vms_affected, 2u);
  // Two of four replicas inside the blast domain.
  EXPECT_DOUBLE_EQ(incident.max_app_blast_fraction, 0.5);
  EXPECT_DOUBLE_EQ(rob.max_app_blast_radius, 0.5);
  EXPECT_GT(rob.worst_incident_recovery_hours, 0.0);
  EXPECT_EQ(rob.worst_incident_recovery_hours,
            incident.recovery_hours);
}

TEST(ChaosDeterminism, FaultedSweepActuallyInjects) {
  std::vector<WorkloadSpec> specs{scaled_down(banking_spec(), 40, 168)};
  const StudySettings settings[] = {small_settings()};
  const Strategy strategies[] = {Strategy::kDynamic};
  const std::uint64_t seeds[] = {42};
  auto cells = SweepDriver::grid(specs, settings, strategies, seeds);
  for (auto& cell : cells) cell.faults = FaultSpec::at_intensity(1.0);
  const auto results = SweepDriver().run(cells);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_TRUE(results[0].planned);
  const auto& rob = results[0].robustness;
  EXPECT_GT(rob.migration_attempts, 0u);
  EXPECT_GT(rob.stale_intervals, 0u);
}

}  // namespace
}  // namespace vmcw
