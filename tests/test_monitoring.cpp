// Unit + integration tests for the monitoring pipeline: agent sampling,
// warehouse aggregation/retention, and end-to-end reconstruction fidelity.

#include <gtest/gtest.h>

#include "monitoring/agent.h"
#include "monitoring/pipeline.h"
#include "monitoring/warehouse.h"
#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

ServerTrace flat_server(std::size_t hours, double cpu_util, double mem_mb) {
  ServerTrace s;
  s.id = "srv";
  s.spec.model = "unit";
  s.spec.cpu_rpe2 = 2000;
  s.spec.memory_mb = 16384;
  s.cpu_util = TimeSeries(std::vector<double>(hours, cpu_util));
  s.mem_mb = TimeSeries(std::vector<double>(hours, mem_mb));
  return s;
}

AgentConfig quiet_agent() {
  AgentConfig c;
  c.intra_hour_sigma = 0.0;
  c.intra_hour_rho = 0.0;
  c.measurement_noise = 0.0;
  c.sample_loss_rate = 0.0;
  return c;
}

TEST(MonitoringAgent, SixtySamplesPerMetricPerHour) {
  const auto server = flat_server(3, 0.2, 4096);
  MonitoringAgent agent(server, quiet_agent(), Rng(1));
  const auto samples = agent.sample_hour(0);
  int cpu = 0, mem = 0, pages = 0, tcp = 0;
  for (const auto& s : samples) {
    switch (s.metric) {
      case Metric::kCpuTotalPct: ++cpu; break;
      case Metric::kMemCommittedMb: ++mem; break;
      case Metric::kPagesPerSec: ++pages; break;
      case Metric::kTcpConnections: ++tcp; break;
    }
  }
  EXPECT_EQ(cpu, 60);
  EXPECT_EQ(mem, 60);
  EXPECT_EQ(pages, 60);
  EXPECT_EQ(tcp, 60);
}

TEST(MonitoringAgent, NoiselessAgentReportsTruth) {
  const auto server = flat_server(2, 0.25, 4096);
  MonitoringAgent agent(server, quiet_agent(), Rng(2));
  for (const auto& s : agent.sample_hour(1)) {
    if (s.metric == Metric::kCpuTotalPct) {
      EXPECT_NEAR(s.value, 25.0, 1e-9);
    }
    if (s.metric == Metric::kMemCommittedMb) {
      EXPECT_NEAR(s.value, 4096, 1e-9);
    }
  }
}

TEST(MonitoringAgent, SampleLossDropsMinutes) {
  const auto server = flat_server(5, 0.2, 4096);
  AgentConfig config = quiet_agent();
  config.sample_loss_rate = 0.5;
  MonitoringAgent agent(server, config, Rng(3));
  const auto samples = agent.sample_all();
  // ~50% of 5*60 minutes, 4 metrics each.
  EXPECT_LT(samples.size(), 5u * 60u * 4u * 3u / 4u);
  EXPECT_GT(samples.size(), 5u * 60u * 4u / 4u);
}

TEST(MonitoringAgent, OutOfRangeHourIsEmpty) {
  const auto server = flat_server(2, 0.2, 4096);
  MonitoringAgent agent(server, quiet_agent(), Rng(4));
  EXPECT_TRUE(agent.sample_hour(2).empty());
}

TEST(MonitoringAgent, CpuCappedAtHundredPercent) {
  const auto server = flat_server(4, 0.98, 4096);
  AgentConfig config;
  config.intra_hour_sigma = 0.5;  // wild intra-hour swings
  MonitoringAgent agent(server, config, Rng(5));
  for (const auto& s : agent.sample_all()) {
    if (s.metric == Metric::kCpuTotalPct) {
      EXPECT_LE(s.value, 100.0);
    }
  }
}

TEST(DataWarehouse, AggregatesMeanAndMax) {
  DataWarehouse warehouse;
  const std::vector<MetricSample> samples{
      {0, Metric::kCpuTotalPct, 10.0},
      {1, Metric::kCpuTotalPct, 20.0},
      {2, Metric::kCpuTotalPct, 60.0},
  };
  warehouse.ingest("s1", samples);
  const auto record = warehouse.record_at("s1", Metric::kCpuTotalPct, 0);
  ASSERT_TRUE(record.has_value());
  EXPECT_NEAR(record->average, 30.0, 1e-9);
  EXPECT_NEAR(record->maximum, 60.0, 1e-9);
  EXPECT_EQ(record->sample_count, 3u);
}

TEST(DataWarehouse, IncrementalIngestMatchesBatch) {
  DataWarehouse a, b;
  std::vector<MetricSample> batch;
  Rng rng(6);
  for (std::uint32_t m = 0; m < 60; ++m)
    batch.push_back({m, Metric::kCpuTotalPct, rng.uniform(0, 100)});
  a.ingest("s", batch);
  for (const auto& s : batch)
    b.ingest("s", std::vector<MetricSample>{s});
  const auto ra = a.record_at("s", Metric::kCpuTotalPct, 0);
  const auto rb = b.record_at("s", Metric::kCpuTotalPct, 0);
  ASSERT_TRUE(ra && rb);
  EXPECT_NEAR(ra->average, rb->average, 1e-9);
  EXPECT_DOUBLE_EQ(ra->maximum, rb->maximum);
}

TEST(DataWarehouse, RetentionExpiresOldHours) {
  RetentionPolicy policy;
  policy.hourly_retention_hours = 24;
  DataWarehouse warehouse(policy);
  std::vector<MetricSample> samples;
  for (std::uint32_t hour = 0; hour < 48; ++hour)
    samples.push_back({hour * 60, Metric::kCpuTotalPct, 1.0});
  warehouse.ingest("s", samples);
  const auto rows = warehouse.hourly_records("s", Metric::kCpuTotalPct);
  ASSERT_EQ(rows.size(), 24u);
  EXPECT_EQ(rows.front().hour, 24u);
  EXPECT_EQ(rows.back().hour, 47u);
}

TEST(DataWarehouse, UnknownServerOrMetricIsEmpty) {
  DataWarehouse warehouse;
  EXPECT_TRUE(warehouse.hourly_records("nope", Metric::kCpuTotalPct).empty());
  EXPECT_FALSE(warehouse.record_at("nope", Metric::kCpuTotalPct, 0));
  EXPECT_TRUE(warehouse.hourly_average_series("nope", Metric::kCpuTotalPct)
                  .empty());
  EXPECT_EQ(warehouse.server_count(), 0u);
}

TEST(DataWarehouse, GapFillCarriesPreviousHour) {
  DataWarehouse warehouse;
  // Hours 0 and 2 have data; hour 1 lost everything.
  const std::vector<MetricSample> samples{
      {0, Metric::kCpuTotalPct, 10.0},
      {125, Metric::kCpuTotalPct, 30.0},  // minute 125 = hour 2
  };
  warehouse.ingest("s", samples);
  const auto series = warehouse.hourly_average_series("s", Metric::kCpuTotalPct);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series[0], 10.0);
  EXPECT_DOUBLE_EQ(series[1], 10.0);  // gap-filled
  EXPECT_DOUBLE_EQ(series[2], 30.0);
}

TEST(Pipeline, ReconstructionTracksGroundTruth) {
  const auto truth = generate_datacenter(
      scaled_down(banking_spec(), 15, 96), 7);
  AgentConfig config;  // realistic defaults
  const auto warehouse = collect_datacenter(truth, config, 99);
  EXPECT_EQ(warehouse.server_count(), truth.servers.size());
  const auto rebuilt = reconstruct_datacenter(truth, warehouse);
  ASSERT_EQ(rebuilt.servers.size(), truth.servers.size());

  const auto fidelity = pipeline_fidelity(truth, rebuilt);
  // Hourly averaging over 60 samples washes out intra-hour noise: mean
  // relative error well inside a few percent.
  EXPECT_LT(fidelity.cpu_mean_abs_rel_error, 0.05);
  EXPECT_LT(fidelity.mem_mean_abs_rel_error, 0.02);
  EXPECT_LT(fidelity.cpu_p99_rel_error, 0.20);
}

TEST(Pipeline, PlanningOnWarehouseDataMatchesTruthScale) {
  // The paper's premise: hourly warehouse aggregates are good enough to
  // plan on. Fleet-level statistics of the reconstruction must match.
  const auto truth = generate_datacenter(
      scaled_down(beverage_spec(), 20, 96), 8);
  const auto warehouse = collect_datacenter(truth, AgentConfig{}, 100);
  const auto rebuilt = reconstruct_datacenter(truth, warehouse);
  EXPECT_NEAR(rebuilt.average_cpu_utilization(),
              truth.average_cpu_utilization(),
              0.1 * truth.average_cpu_utilization() + 1e-4);
}

TEST(MetricNames, Stable) {
  EXPECT_STREQ(to_string(Metric::kCpuTotalPct), "% Total Processor Time");
  EXPECT_STREQ(to_string(Metric::kMemCommittedMb), "Memory Committed (MB)");
}

}  // namespace
}  // namespace vmcw
