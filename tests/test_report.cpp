// Tests for the one-call reproduction report.

#include "report/report.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>

#include "util/table.h"

namespace vmcw {
namespace {

ReportOptions tiny_options() {
  ReportOptions options;
  options.servers_per_dc = 40;
  options.bound_step = 0.2;
  return options;
}

TEST(Report, ContainsEverySection) {
  const std::string md = build_paper_report(tiny_options());
  for (const char* heading :
       {"## Workloads", "## Burstiness", "## Resource ratio",
        "## Consolidation comparison", "## Sensitivity",
        "## Live-migration reservation", "## Emulator validation"}) {
    EXPECT_NE(md.find(heading), std::string::npos) << heading;
  }
  for (const char* workload :
       {"Banking", "Airlines", "Natural Resources", "Beverage"}) {
    EXPECT_NE(md.find(workload), std::string::npos) << workload;
  }
}

TEST(Report, IsValidMarkdownTables) {
  const std::string md = build_paper_report(tiny_options());
  // Every table header row is followed by a separator row.
  std::size_t pos = 0;
  int tables = 0;
  while ((pos = md.find("|---|", pos)) != std::string::npos) {
    ++tables;
    pos += 5;
  }
  EXPECT_GE(tables, 6);
}

TEST(Report, WriteToFile) {
  const std::string path = "/tmp/vmcw_test_report.md";
  write_paper_report(path, tiny_options());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("Virtual Machine Consolidation"),
            std::string::npos);
}

TEST(Report, WriteToBadPathThrows) {
  EXPECT_THROW(write_paper_report("/nonexistent/dir/report.md", tiny_options()),
               std::runtime_error);
}

TEST(ReportData, WritesEveryFigureFile) {
  const std::string dir = "/tmp/vmcw_test_report_data";
  const auto written = write_report_data(dir, tiny_options());
  ASSERT_EQ(written.size(), 8u);
  for (const char* name :
       {"fig02_cpu_p2a.csv", "fig03_cpu_cov.csv", "fig04_mem_p2a.csv",
        "fig05_mem_cov.csv", "fig06_resource_ratio.csv", "fig07_costs.csv",
        "fig12_active_servers.csv", "fig13_16_sensitivity.csv"}) {
    std::ifstream in(dir + "/" + name);
    ASSERT_TRUE(in.good()) << name;
    std::string header, first_row;
    std::getline(in, header);
    std::getline(in, first_row);
    EXPECT_FALSE(header.empty()) << name;
    EXPECT_FALSE(first_row.empty()) << name;
    EXPECT_NE(header.find(','), std::string::npos) << name;
  }
}

TEST(ReportData, CdfFilesHaveHundredQuantileRows) {
  const std::string dir = "/tmp/vmcw_test_report_data2";
  write_report_data(dir, tiny_options());
  std::ifstream in(dir + "/fig02_cpu_p2a.csv");
  std::string line;
  int rows = -1;  // discount header
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 100);
}

// Byte-identity pins for the atomic-export rewrite (PR 10 rerouted the
// report writers from raw ofstream onto write_file_atomic): the bytes on
// disk must be exactly what the ofstream path produced. FNV-1a; recompute
// only for a deliberate report-format change. servers_per_dc=8 keeps the
// pinned run fast while exercising every section.
std::uint64_t fnv1a_accumulate(std::uint64_t h, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  char c;
  while (in.get(c)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

ReportOptions pinned_options() {
  ReportOptions options;
  options.servers_per_dc = 8;
  return options;
}

TEST(Report, PaperReportBytesArePinned) {
  const std::string path = "/tmp/vmcw_pin_report.md";
  write_paper_report(path, pinned_options());
  EXPECT_EQ(fnv1a_accumulate(1469598103934665603ULL, path),
            5673525289919084153ULL);
}

TEST(Report, ReportDataBytesArePinned) {
  const auto written =
      write_report_data("/tmp/vmcw_pin_report_data", pinned_options());
  ASSERT_EQ(written.size(), 8u);
  // One rolling hash over every emitted file, in the order write_report_data
  // returns them — pins both the file set and each file's bytes.
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& p : written) h = fnv1a_accumulate(h, p);
  EXPECT_EQ(h, 6103593357762489322ULL);
}

TEST(TextTableMarkdown, RendersAndEscapes) {
  TextTable t({"a", "b"});
  t.add_row({"x|y", "2"});
  const std::string md = t.markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("x\\|y"), std::string::npos);
}

}  // namespace
}  // namespace vmcw
