// Tests for CSV trace serialization: roundtrip fidelity and malformed
// input rejection.

#include "trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>

#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

Datacenter sample_dc() {
  return generate_datacenter(scaled_down(airlines_spec(), 8, 48), 9);
}

TEST(TraceIo, RoundtripIsLossless) {
  const auto original = sample_dc();
  std::stringstream servers, traces;
  write_servers_csv(original, servers);
  write_traces_csv(original, traces);

  const auto loaded =
      read_datacenter_csv(servers, traces, original.name, original.industry);
  ASSERT_EQ(loaded.servers.size(), original.servers.size());
  for (std::size_t i = 0; i < original.servers.size(); ++i) {
    const auto& a = original.servers[i];
    const auto& b = loaded.servers[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.klass, b.klass);
    EXPECT_EQ(a.spec, b.spec);
    ASSERT_EQ(a.cpu_util.size(), b.cpu_util.size());
    for (std::size_t t = 0; t < a.cpu_util.size(); ++t) {
      EXPECT_DOUBLE_EQ(a.cpu_util[t], b.cpu_util[t]);
      EXPECT_DOUBLE_EQ(a.mem_mb[t], b.mem_mb[t]);
    }
  }
}

TEST(TraceIo, HeadersPresent) {
  const auto dc = sample_dc();
  std::stringstream servers, traces;
  write_servers_csv(dc, servers);
  write_traces_csv(dc, traces);
  std::string line;
  std::getline(servers, line);
  EXPECT_EQ(line,
            "id,class,model,cpu_rpe2,memory_mb,idle_watts,peak_watts,"
            "rack_units,hardware_cost");
  std::getline(traces, line);
  EXPECT_EQ(line, "id,hour,cpu_util,mem_mb");
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream empty_servers, traces("id,hour,cpu_util,mem_mb\n");
  EXPECT_THROW(read_datacenter_csv(empty_servers, traces, "X", "Test"),
               std::runtime_error);
}

TEST(TraceIo, RejectsWrongColumnCount) {
  std::stringstream servers(
      "id,class,model,cpu_rpe2,memory_mb,idle_watts,peak_watts,rack_units,"
      "hardware_cost\n"
      "s1,web,m,100\n");
  std::stringstream traces("id,hour,cpu_util,mem_mb\n");
  EXPECT_THROW(read_datacenter_csv(servers, traces, "X", "Test"),
               std::runtime_error);
}

TEST(TraceIo, RejectsUnknownServerInTraces) {
  std::stringstream servers(
      "id,class,model,cpu_rpe2,memory_mb,idle_watts,peak_watts,rack_units,"
      "hardware_cost\n"
      "s1,web,m,100,1024,50,100,1,500\n");
  std::stringstream traces(
      "id,hour,cpu_util,mem_mb\n"
      "ghost,0,0.5,100\n");
  EXPECT_THROW(read_datacenter_csv(servers, traces, "X", "Test"),
               std::runtime_error);
}

TEST(TraceIo, RejectsMalformedNumber) {
  std::stringstream servers(
      "id,class,model,cpu_rpe2,memory_mb,idle_watts,peak_watts,rack_units,"
      "hardware_cost\n"
      "s1,web,m,abc,1024,50,100,1,500\n");
  std::stringstream traces("id,hour,cpu_util,mem_mb\n");
  EXPECT_THROW(read_datacenter_csv(servers, traces, "X", "Test"),
               std::runtime_error);
}

TEST(TraceIo, OutOfOrderTraceRowsAccepted) {
  std::stringstream servers(
      "id,class,model,cpu_rpe2,memory_mb,idle_watts,peak_watts,rack_units,"
      "hardware_cost\n"
      "s1,batch,m,100,1024,50,100,1,500\n");
  std::stringstream traces(
      "id,hour,cpu_util,mem_mb\n"
      "s1,2,0.3,300\n"
      "s1,0,0.1,100\n"
      "s1,1,0.2,200\n");
  const auto dc = read_datacenter_csv(servers, traces, "X", "Test");
  ASSERT_EQ(dc.servers.size(), 1u);
  EXPECT_EQ(dc.servers[0].klass, WorkloadClass::kBatch);
  ASSERT_EQ(dc.servers[0].cpu_util.size(), 3u);
  EXPECT_DOUBLE_EQ(dc.servers[0].cpu_util[0], 0.1);
  EXPECT_DOUBLE_EQ(dc.servers[0].cpu_util[1], 0.2);
  EXPECT_DOUBLE_EQ(dc.servers[0].cpu_util[2], 0.3);
  EXPECT_DOUBLE_EQ(dc.servers[0].mem_mb[2], 300.0);
}

TEST(TraceIo, FileRoundtrip) {
  const auto original = sample_dc();
  const std::string servers_path = "/tmp/vmcw_test_servers.csv";
  const std::string traces_path = "/tmp/vmcw_test_traces.csv";
  save_datacenter(original, servers_path, traces_path);
  const auto loaded =
      load_datacenter(servers_path, traces_path, original.name,
                      original.industry);
  EXPECT_EQ(loaded.servers.size(), original.servers.size());
  EXPECT_DOUBLE_EQ(loaded.average_cpu_utilization(),
                   original.average_cpu_utilization());
}

// Byte-identity pin for the atomic-export rewrite (PR 10 rerouted
// save_datacenter from raw ofstream onto write_file_atomic): the bytes on
// disk must be exactly what the ofstream path produced. FNV-1a over the
// whole file; recompute only for a deliberate format change.
std::uint64_t fnv1a_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::uint64_t h = 1469598103934665603ULL;
  char c;
  while (in.get(c)) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

TEST(TraceIo, SaveDatacenterBytesArePinned) {
  const WorkloadSpec spec = scaled_down(all_workload_specs()[0], 12, 48);
  const Datacenter dc = generate_datacenter(spec, 42);
  const std::string servers_path = "/tmp/vmcw_pin_servers.csv";
  const std::string traces_path = "/tmp/vmcw_pin_traces.csv";
  save_datacenter(dc, servers_path, traces_path);
  EXPECT_EQ(fnv1a_file(servers_path), 11602284319750814998ULL);
  EXPECT_EQ(fnv1a_file(traces_path), 1964295855707492839ULL);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_datacenter("/nonexistent/a.csv", "/nonexistent/b.csv",
                               "X", "Test"),
               std::runtime_error);
}

}  // namespace
}  // namespace vmcw
