// Tests for the fleet-scale planning subsystem (src/scale): the
// CapacityIndex filter's equivalence with the linear first-fit scan,
// streaming estate generation's byte-identity with the materialized
// generator, and sharded emulation's merge identity — including at
// VMCW_THREADS 1/2/8.

#include "core/capacity_index.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/binpack.h"
#include "core/emulator.h"
#include "core/settings.h"
#include "runtime/thread_pool.h"
#include "scale/shard.h"
#include "scale/streaming_estate.h"
#include "test_helpers.h"
#include "topology/failure_domains.h"
#include "trace/generator.h"
#include "util/rng.h"

namespace vmcw {
namespace {

using testing::small_fleet;
using testing::small_settings;

// ---------------------------------------------------------------------------
// CapacityIndex: the filter must agree with the linear scan it replaces.

/// Reference: first host >= from passing the exact capacity predicate.
std::size_t linear_first_fit(const std::vector<ResourceVector>& capacity,
                             const std::vector<ResourceVector>& load,
                             const ResourceVector& need, std::size_t from) {
  for (std::size_t h = from; h < capacity.size(); ++h)
    if ((load[h] + need).fits_within(capacity[h])) return h;
  return CapacityIndex::npos;
}

/// The caller-side protocol: index candidates re-tested exactly, advancing
/// past false positives — the admission loop in miniature.
std::size_t indexed_first_fit(const CapacityIndex& index,
                              const std::vector<ResourceVector>& capacity,
                              const std::vector<ResourceVector>& load,
                              const ResourceVector& need, std::size_t from) {
  while (from < capacity.size()) {
    const std::size_t h = index.first_fit(need, from);
    if (h == CapacityIndex::npos || h >= capacity.size())
      return CapacityIndex::npos;
    if ((load[h] + need).fits_within(capacity[h])) return h;
    from = h + 1;
  }
  return CapacityIndex::npos;
}

TEST(CapacityIndex, MatchesLinearScanOnRandomFleets) {
  Rng rng(2024);
  for (int round = 0; round < 20; ++round) {
    const std::size_t hosts = 1 + static_cast<std::size_t>(
                                      rng.uniform_int(1, 200));
    std::vector<ResourceVector> capacity(hosts);
    std::vector<ResourceVector> load(hosts);
    CapacityIndex index;
    for (std::size_t h = 0; h < hosts; ++h) {
      capacity[h] = {rng.uniform(100.0, 50000.0), rng.uniform(1000.0, 2e5)};
      index.push_host(capacity[h]);
      // Loads from empty to overfull, including exact-fit edges.
      load[h] = {capacity[h].cpu_rpe2 * rng.uniform(0.0, 1.2),
                 capacity[h].memory_mb * rng.uniform(0.0, 1.2)};
      if (rng.bernoulli(0.1)) load[h] = capacity[h];  // exactly full
      index.set_load(h, load[h]);
    }
    for (int trial = 0; trial < 200; ++trial) {
      const ResourceVector need{rng.uniform(0.0, 60000.0),
                                rng.uniform(0.0, 2.5e5)};
      const std::size_t from =
          static_cast<std::size_t>(rng.uniform_int(0, 2 * hosts)) / 2;
      EXPECT_EQ(indexed_first_fit(index, capacity, load, need, from),
                linear_first_fit(capacity, load, need, from))
          << "round " << round << " trial " << trial;
    }
  }
}

TEST(CapacityIndex, StaysExactThroughPlaceEvictCycles) {
  Rng rng(7);
  const std::size_t hosts = 64;
  std::vector<ResourceVector> capacity(hosts);
  std::vector<ResourceVector> load(hosts);
  CapacityIndex index;
  for (std::size_t h = 0; h < hosts; ++h) {
    capacity[h] = {10000.0, 65536.0};
    index.push_host(capacity[h]);
  }
  for (int step = 0; step < 2000; ++step) {
    const std::size_t h =
        static_cast<std::size_t>(rng.uniform_int(0, hosts - 1));
    const ResourceVector delta{rng.uniform(0.0, 4000.0),
                               rng.uniform(0.0, 20000.0)};
    if (rng.bernoulli(0.5)) {
      load[h] = load[h] + delta;
    } else {
      load[h] = {std::max(0.0, load[h].cpu_rpe2 - delta.cpu_rpe2),
                 std::max(0.0, load[h].memory_mb - delta.memory_mb)};
    }
    // set_load re-derives the leaf from the authoritative accumulator, so
    // no drift accumulates over arbitrarily many cycles.
    index.set_load(h, load[h]);
    const ResourceVector need{rng.uniform(0.0, 12000.0),
                              rng.uniform(0.0, 70000.0)};
    EXPECT_EQ(indexed_first_fit(index, capacity, load, need, 0),
              linear_first_fit(capacity, load, need, 0));
  }
}

TEST(CapacityIndex, EmptyAndOutOfRangeQueries) {
  CapacityIndex index;
  EXPECT_EQ(index.first_fit({1.0, 1.0}), CapacityIndex::npos);
  index.push_host({100.0, 100.0});
  EXPECT_EQ(index.first_fit({1.0, 1.0}, 5), CapacityIndex::npos);
  EXPECT_EQ(index.first_fit({1.0, 1.0}, 0), 0u);
  EXPECT_EQ(index.first_fit({1000.0, 1.0}, 0), CapacityIndex::npos);
}

// ---------------------------------------------------------------------------
// Admission equivalence: the indexed path must produce the same placements
// as the linear scan, decision for decision.

std::string placement_fingerprint(const Placement& placement,
                                  const std::vector<ResourceVector>& load) {
  std::string fp;
  char buffer[96];
  for (std::size_t vm = 0; vm < placement.vm_count(); ++vm) {
    std::snprintf(buffer, sizeof(buffer), "%d;", placement.host_of(vm));
    fp += buffer;
  }
  for (const auto& l : load) {
    std::snprintf(buffer, sizeof(buffer), "%a,%a;", l.cpu_rpe2, l.memory_mb);
    fp += buffer;
  }
  return fp;
}

TEST(IndexedAdmission, MatchesLinearScanOnRandomSequences) {
  const StudySettings settings;
  const HostPool pool = HostPool::uniform(settings.target);
  const double bound = settings.dynamic_utilization_bound;
  Rng rng(99);
  for (int round = 0; round < 10; ++round) {
    const std::size_t n = 120;
    std::vector<ResourceVector> sizes(n);
    for (auto& s : sizes) {
      s = {rng.uniform(10.0, settings.target.cpu_rpe2 * 0.7),
           rng.uniform(100.0, settings.target.memory_mb * 0.7)};
      // A few oversized items exercise the not-placeable path on both
      // sides equally.
      if (rng.bernoulli(0.02)) s.cpu_rpe2 = settings.target.cpu_rpe2 * 2;
    }
    ConstraintSet constraints(n);
    for (int i = 0; i < 8; ++i) {
      const auto a = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      const auto b = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      if (a != b) constraints.add_anti_affinity(a, b);
    }
    constraints.pin(static_cast<std::size_t>(rng.uniform_int(0, n - 1)), 3);

    Placement linear_placement(n);
    std::vector<ResourceVector> linear_load;
    Placement indexed_placement(n);
    std::vector<ResourceVector> indexed_load;
    CapacityIndex index;
    for (std::size_t vm = 0; vm < n; ++vm) {
      AdmissionOptions linear_options;
      const auto a = admit_one(vm, sizes[vm], linear_load, pool, bound,
                               constraints, linear_placement, linear_options);
      AdmissionOptions indexed_options;
      indexed_options.index = &index;
      const auto b = admit_one(vm, sizes[vm], indexed_load, pool, bound,
                               constraints, indexed_placement,
                               indexed_options);
      ASSERT_EQ(a.has_value(), b.has_value()) << "vm " << vm;
      if (a) {
        EXPECT_EQ(*a, *b) << "vm " << vm;
      }
    }
    EXPECT_EQ(placement_fingerprint(indexed_placement, indexed_load),
              placement_fingerprint(linear_placement, linear_load));
    EXPECT_EQ(index.size(), indexed_load.size());
  }
}

TEST(IndexedAdmission, RespectsExcludeAndFrozenHosts) {
  const StudySettings settings;
  const HostPool pool = HostPool::uniform(settings.target);
  const double bound = settings.dynamic_utilization_bound;
  const std::size_t n = 40;
  std::vector<ResourceVector> sizes(
      n, {settings.target.cpu_rpe2 * 0.3, settings.target.memory_mb * 0.3});
  const ConstraintSet constraints(n);
  const std::vector<std::uint8_t> frozen{1, 0, 1, 0};

  Placement linear_placement(n);
  std::vector<ResourceVector> linear_load;
  Placement indexed_placement(n);
  std::vector<ResourceVector> indexed_load;
  CapacityIndex index;
  for (std::size_t vm = 0; vm < n; ++vm) {
    AdmissionOptions linear_options;
    linear_options.exclude_host = 1;
    linear_options.frozen_hosts = frozen;
    AdmissionOptions indexed_options = linear_options;
    indexed_options.index = &index;
    const auto a = admit_one(vm, sizes[vm], linear_load, pool, bound,
                             constraints, linear_placement, linear_options);
    const auto b = admit_one(vm, sizes[vm], indexed_load, pool, bound,
                             constraints, indexed_placement, indexed_options);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*a, *b);
    EXPECT_NE(*a, 0u);
    EXPECT_NE(*a, 1u);
    EXPECT_NE(*a, 2u);
  }
  EXPECT_EQ(placement_fingerprint(indexed_placement, indexed_load),
            placement_fingerprint(linear_placement, linear_load));
}

TEST(IndexedAdmission, RepairAndDrainMatchesLinearScan) {
  const StudySettings settings;
  const HostPool pool = HostPool::uniform(settings.target);
  const double bound = settings.dynamic_utilization_bound;
  Rng rng(4242);
  const std::size_t n = 150;
  std::vector<ResourceVector> sizes(n);
  for (auto& s : sizes)
    s = {rng.uniform(10.0, settings.target.cpu_rpe2 * 0.5),
         rng.uniform(100.0, settings.target.memory_mb * 0.5)};
  const ConstraintSet constraints(n);

  // Cram VMs far past the bound so repair has real work, and leave a few
  // nearly empty hosts so drain does too.
  const std::size_t hosts = 30;
  Placement placement(n);
  std::vector<ResourceVector> load(hosts);
  for (std::size_t vm = 0; vm < n; ++vm) {
    const std::size_t host = vm < n - 3 ? vm % (hosts / 3) : hosts - 1 - vm % 3;
    placement.assign(vm, static_cast<std::int32_t>(host));
    load[host] = load[host] + sizes[vm];
  }

  Placement linear_placement = placement;
  std::vector<ResourceVector> linear_load = load;
  const auto linear = repair_and_drain(sizes, linear_placement, linear_load,
                                       pool, bound, 0.2, constraints);

  Placement indexed_placement = placement;
  std::vector<ResourceVector> indexed_load = load;
  CapacityIndex index;
  for (std::size_t h = 0; h < indexed_load.size(); ++h) {
    index.push_host(pool.capacity_of(h, bound));
    index.set_load(h, indexed_load[h]);
  }
  const auto indexed =
      repair_and_drain(sizes, indexed_placement, indexed_load, pool, bound,
                       0.2, constraints, {}, &index);

  EXPECT_FALSE(linear.repair_moves.empty());
  ASSERT_EQ(indexed.repair_moves.size(), linear.repair_moves.size());
  for (std::size_t i = 0; i < linear.repair_moves.size(); ++i) {
    EXPECT_EQ(indexed.repair_moves[i].vm, linear.repair_moves[i].vm);
    EXPECT_EQ(indexed.repair_moves[i].from, linear.repair_moves[i].from);
    EXPECT_EQ(indexed.repair_moves[i].to, linear.repair_moves[i].to);
  }
  ASSERT_EQ(indexed.drain_moves.size(), linear.drain_moves.size());
  for (std::size_t i = 0; i < linear.drain_moves.size(); ++i)
    EXPECT_EQ(indexed.drain_moves[i].to, linear.drain_moves[i].to);
  EXPECT_EQ(indexed.unresolved_hosts, linear.unresolved_hosts);
  EXPECT_EQ(indexed.drained_hosts, linear.drained_hosts);
  EXPECT_EQ(placement_fingerprint(indexed_placement, indexed_load),
            placement_fingerprint(linear_placement, linear_load));
}

// ---------------------------------------------------------------------------
// StreamingEstate: byte-identity with generate_datacenter, bounded cache.

void expect_same_server(const ServerTrace& streamed, const ServerTrace& full,
                        std::size_t index) {
  EXPECT_EQ(streamed.id, full.id) << "server " << index;
  EXPECT_EQ(streamed.app, full.app) << "server " << index;
  EXPECT_EQ(streamed.klass, full.klass) << "server " << index;
  EXPECT_EQ(streamed.spec.model, full.spec.model) << "server " << index;
  ASSERT_EQ(streamed.cpu_util.size(), full.cpu_util.size());
  ASSERT_EQ(streamed.mem_mb.size(), full.mem_mb.size());
  for (std::size_t h = 0; h < full.cpu_util.size(); ++h) {
    // Exact double equality: the streamed path replays the same draws.
    ASSERT_EQ(streamed.cpu_util[h], full.cpu_util[h])
        << "server " << index << " hour " << h;
    ASSERT_EQ(streamed.mem_mb[h], full.mem_mb[h])
        << "server " << index << " hour " << h;
  }
}

TEST(StreamingEstate, ByteIdenticalToMaterializedGeneration) {
  const WorkloadSpec spec = scaled_down(banking_spec(), 96, 72);
  const Datacenter full = generate_datacenter(spec, 42);

  StreamingEstate::Options options;
  options.block_servers = 16;
  options.max_resident_servers = 32;  // forces eviction mid-walk
  StreamingEstate estate(spec, 42, options);

  ASSERT_EQ(estate.server_count(), full.servers.size());
  for (std::size_t i = 0; i < full.servers.size(); ++i)
    expect_same_server(estate.server(i), full.servers[i], i);
  // The forward walk evicted early blocks; walking backward regenerates
  // them and must reproduce the same bytes again.
  for (std::size_t i = full.servers.size(); i-- > 0;)
    expect_same_server(estate.server(i), full.servers[i], i);
  EXPECT_GT(estate.block_misses(), estate.server_count() / 16)
      << "backward walk should have missed evicted blocks";
}

TEST(StreamingEstate, CacheStaysBounded) {
  const WorkloadSpec spec = scaled_down(banking_spec(), 128, 48);
  StreamingEstate::Options options;
  options.block_servers = 16;
  options.max_resident_servers = 48;
  StreamingEstate estate(spec, 7, options);
  for (std::size_t i = 0; i < estate.server_count(); ++i) {
    estate.server(i);
    EXPECT_LE(estate.resident_servers(), options.max_resident_servers);
  }
  EXPECT_EQ(estate.block_hits() + estate.block_misses(),
            estate.server_count());
  EXPECT_EQ(estate.servers_generated(),
            estate.block_misses() * options.block_servers);
}

TEST(StreamingEstate, RepeatedAccessHitsCache) {
  const WorkloadSpec spec = scaled_down(banking_spec(), 32, 48);
  StreamingEstate estate(spec, 7);  // default cache holds everything
  for (int pass = 0; pass < 3; ++pass)
    for (std::size_t i = 0; i < estate.server_count(); ++i) estate.server(i);
  EXPECT_EQ(estate.block_misses(), 1u);  // 32 servers, one 1024-block
  EXPECT_EQ(estate.servers_generated(), 32u);
}

// ---------------------------------------------------------------------------
// Sharded emulation: merged reports equal the unsharded replay, at any
// thread count.

std::string report_fingerprint(const EmulationReport& r) {
  std::string fp;
  char buffer[64];
  auto add = [&](double v) {
    std::snprintf(buffer, sizeof(buffer), "%a;", v);
    fp += buffer;
  };
  fp += std::to_string(r.eval_hours) + "|" + std::to_string(r.intervals) +
        "|" + std::to_string(r.provisioned_hosts) + "|";
  for (auto a : r.active_hosts_per_interval) fp += std::to_string(a) + ",";
  for (double v : r.host_avg_cpu_util) add(v);
  for (double v : r.host_peak_cpu_util) add(v);
  for (double v : r.cpu_contention_samples) add(v);
  for (double v : r.mem_contention_samples) add(v);
  fp += "|" + std::to_string(r.hours_with_contention) + "|";
  for (auto h : r.vm_contention_hours) fp += std::to_string(h) + ",";
  fp += "|" + std::to_string(r.total_vm_contention_hours);
  add(r.energy_wh);
  return fp;
}

/// A packed scenario with real contention (VMs sized at mean demand, so
/// bursts overload hosts) and a multi-interval schedule that moves VMs,
/// plus a power-domain map of `hosts_per_domain`-host domains.
struct ShardScenario {
  std::vector<VmWorkload> vms;
  std::vector<Placement> schedule;
  StudySettings settings;
  HostPool pool;
  FailureDomainMap domains;

  // 300 servers: the aggregate burst peak is several blades' worth of
  // demand (60 servers' peak is only half a blade — contention would be
  // impossible), so crammed packing below overloads hosts for real.
  explicit ShardScenario(int servers = 300, std::size_t hosts_per_domain = 2)
      : pool(HostPool::uniform(StudySettings{}.target)) {
    settings = small_settings();
    vms = small_fleet(servers);
    const std::size_t n = vms.size();
    std::vector<ResourceVector> sizes(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto cpu = vms[i].cpu_rpe2.samples();
      const auto mem = vms[i].mem_mb.samples();
      double cpu_sum = 0, mem_sum = 0;
      for (double v : cpu) cpu_sum += v;
      for (double v : mem) mem_sum += v;
      // Pack by a small fraction of mean demand: the replayed demand then
      // overloads hosts routinely, so contention-sample merging is
      // genuinely exercised (both CPU bursts and steady memory pressure).
      sizes[i] = {0.15 * cpu_sum / static_cast<double>(cpu.size()),
                  0.15 * mem_sum / static_cast<double>(mem.size())};
    }
    const auto packed =
        ffd_pack(sizes, pool, settings.static_utilization_bound,
                 ConstraintSet(n));
    Placement base = packed->placement;
    // Second placement: rotate every VM one host to the right, so interval
    // transitions exercise the per-interval rebuild in every shard.
    const std::size_t bound = base.host_index_bound();
    Placement rotated(n);
    for (std::size_t vm = 0; vm < n; ++vm)
      rotated.assign(vm, static_cast<std::int32_t>(
                             (static_cast<std::size_t>(base.host_of(vm)) + 1) %
                             (bound + 1)));
    for (std::size_t i = 0; i < settings.intervals(); ++i)
      schedule.push_back(i % 2 == 0 ? base : rotated);
    for (std::size_t h = 0; h <= bound + 1; ++h)
      domains.assign(h, /*rack=*/static_cast<std::int32_t>(h),
                     /*power_domain=*/static_cast<std::int32_t>(
                         h / hosts_per_domain));
  }
};

TEST(ShardedEmulation, MatchesUnshardedReplay) {
  ShardScenario s;
  const EmulationReport whole =
      emulate(s.vms, s.schedule, s.settings, true, s.pool);
  ShardingOptions options;
  options.max_shards = 4;
  const EmulationReport sharded = emulate_sharded(
      s.vms, s.schedule, s.settings, true, s.pool, s.domains, options);

  // The scenario must actually exercise the merge paths.
  ASSERT_FALSE(whole.cpu_contention_samples.empty());
  ASSERT_GT(whole.total_vm_contention_hours, 0u);

  EXPECT_EQ(sharded.eval_hours, whole.eval_hours);
  EXPECT_EQ(sharded.intervals, whole.intervals);
  EXPECT_EQ(sharded.provisioned_hosts, whole.provisioned_hosts);
  EXPECT_EQ(sharded.active_hosts_per_interval,
            whole.active_hosts_per_interval);
  EXPECT_EQ(sharded.host_avg_cpu_util, whole.host_avg_cpu_util);
  EXPECT_EQ(sharded.host_peak_cpu_util, whole.host_peak_cpu_util);
  EXPECT_EQ(sharded.cpu_contention_samples, whole.cpu_contention_samples);
  EXPECT_EQ(sharded.mem_contention_samples, whole.mem_contention_samples);
  EXPECT_EQ(sharded.hours_with_contention, whole.hours_with_contention);
  EXPECT_EQ(sharded.vm_contention_hours, whole.vm_contention_hours);
  EXPECT_EQ(sharded.total_vm_contention_hours,
            whole.total_vm_contention_hours);
  // energy_wh is the one field whose floating-point fold is grouped per
  // shard; equal up to accumulation rounding.
  EXPECT_NEAR(sharded.energy_wh, whole.energy_wh,
              1e-9 * std::abs(whole.energy_wh));
}

TEST(ShardedEmulation, SingleShardWhenNoDomainBoundaries) {
  ShardScenario s;
  const FailureDomainMap empty_map;
  const EmulationReport whole =
      emulate(s.vms, s.schedule, s.settings, true, s.pool);
  const EmulationReport sharded =
      emulate_sharded(s.vms, s.schedule, s.settings, true, s.pool, empty_map);
  // One shard: even the energy fold is grouped identically.
  EXPECT_EQ(report_fingerprint(sharded), report_fingerprint(whole));
}

TEST(ShardedEmulation, IdenticalAtAnyThreadCount) {
  ShardScenario s;
  ShardingOptions options;
  options.max_shards = 8;
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const EmulationReport report = emulate_sharded(
        s.vms, s.schedule, s.settings, true, s.pool, s.domains, options);
    const std::string fp = report_fingerprint(report);
    if (reference.empty())
      reference = fp;
    else
      EXPECT_EQ(fp, reference) << "at " << threads << " threads";
  }
  EXPECT_FALSE(reference.empty());
}

TEST(ShardPlan, CutsOnlyAtDomainBoundaries) {
  FailureDomainMap domains;
  for (std::size_t h = 0; h < 100; ++h)
    domains.assign(h, static_cast<std::int32_t>(h / 10),
                   static_cast<std::int32_t>(h / 10));
  ShardingOptions options;
  options.max_shards = 4;
  const auto edges = plan_shards(domains, 100, options);
  ASSERT_GE(edges.size(), 2u);
  EXPECT_EQ(edges.front(), 0u);
  EXPECT_EQ(edges.back(), 100u);
  EXPECT_LE(edges.size() - 1, options.max_shards);
  EXPECT_GT(edges.size() - 1, 1u) << "boundaries exist, plan should use them";
  for (std::size_t i = 1; i + 1 < edges.size(); ++i) {
    EXPECT_NE(domains.domain_of(edges[i] - 1, options.boundary),
              domains.domain_of(edges[i], options.boundary))
        << "cut at " << edges[i] << " splits a domain";
  }
}

TEST(ShardPlan, UnassignedMapYieldsOneShard) {
  const FailureDomainMap domains;
  const auto edges = plan_shards(domains, 50);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], 0u);
  EXPECT_EQ(edges[1], 50u);
}

}  // namespace
}  // namespace vmcw
