// Durable sweep execution: crash-safe journal, resume byte-identity,
// per-cell failure isolation, watchdog timeouts, and retry accounting.

#include "sweep/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "sweep/sweep.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "test_helpers.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

using testing::small_settings;

/// Two estates x two strategies x two seeds, with fault injection on so
/// the journal round-trips the full RobustnessReport (incidents, SLA
/// windows, per-VM downtime) and not just the fault-free fields.
std::vector<SweepCell> faulted_grid() {
  const WorkloadSpec specs[] = {
      scaled_down(banking_spec(), 16, 168),
      scaled_down(airlines_spec(), 16, 168),
  };
  StudySettings settings = small_settings();
  settings.domains.spread = true;
  const StudySettings all_settings[] = {settings};
  const Strategy strategies[] = {Strategy::kSemiStatic, Strategy::kDynamic};
  const std::uint64_t seeds[] = {7, 99};
  auto cells = SweepDriver::grid(specs, all_settings, strategies, seeds);
  for (auto& cell : cells) {
    cell.faults = FaultSpec::at_intensity(0.5);
    cell.faults.rack_outages_per_month = 20.0;
    cell.faults.domain_outage_hours_min = 2;
    cell.faults.domain_outage_hours_max = 6;
  }
  return cells;
}

void expect_reports_equal(const EmulationReport& a, const EmulationReport& b) {
  EXPECT_EQ(a.eval_hours, b.eval_hours);
  EXPECT_EQ(a.intervals, b.intervals);
  EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
  EXPECT_EQ(a.active_hosts_per_interval, b.active_hosts_per_interval);
  EXPECT_EQ(a.host_avg_cpu_util, b.host_avg_cpu_util);
  EXPECT_EQ(a.host_peak_cpu_util, b.host_peak_cpu_util);
  EXPECT_EQ(a.cpu_contention_samples, b.cpu_contention_samples);
  EXPECT_EQ(a.mem_contention_samples, b.mem_contention_samples);
  EXPECT_EQ(a.hours_with_contention, b.hours_with_contention);
  EXPECT_EQ(a.vm_contention_hours, b.vm_contention_hours);
  EXPECT_EQ(a.total_vm_contention_hours, b.total_vm_contention_hours);
  EXPECT_EQ(a.energy_wh, b.energy_wh);  // bit-exact, not approximate
}

void expect_robustness_equal(const RobustnessReport& a,
                             const RobustnessReport& b) {
  expect_reports_equal(a.emulation, b.emulation);
  EXPECT_EQ(a.host_crashes, b.host_crashes);
  EXPECT_EQ(a.capacity_lost_host_hours, b.capacity_lost_host_hours);
  EXPECT_EQ(a.stale_intervals, b.stale_intervals);
  EXPECT_EQ(a.migration_attempts, b.migration_attempts);
  EXPECT_EQ(a.failed_migration_attempts, b.failed_migration_attempts);
  EXPECT_EQ(a.migration_retries, b.migration_retries);
  EXPECT_EQ(a.migrations_completed, b.migrations_completed);
  EXPECT_EQ(a.migrations_deferred, b.migrations_deferred);
  EXPECT_EQ(a.evacuations, b.evacuations);
  EXPECT_EQ(a.failed_evacuations, b.failed_evacuations);
  EXPECT_EQ(a.vm_downtime_hours, b.vm_downtime_hours);
  EXPECT_EQ(a.vm_down_hours, b.vm_down_hours);
  EXPECT_EQ(a.max_vms_down_simultaneously, b.max_vms_down_simultaneously);
  ASSERT_EQ(a.incidents.size(), b.incidents.size());
  for (std::size_t i = 0; i < a.incidents.size(); ++i) {
    EXPECT_EQ(a.incidents[i].cause, b.incidents[i].cause);
    EXPECT_EQ(a.incidents[i].domain, b.incidents[i].domain);
    EXPECT_EQ(a.incidents[i].start_hour, b.incidents[i].start_hour);
    EXPECT_EQ(a.incidents[i].hosts_lost, b.incidents[i].hosts_lost);
    EXPECT_EQ(a.incidents[i].vms_affected, b.incidents[i].vms_affected);
    EXPECT_EQ(a.incidents[i].vms_stranded, b.incidents[i].vms_stranded);
    EXPECT_EQ(a.incidents[i].recovery_hours, b.incidents[i].recovery_hours);
    EXPECT_EQ(a.incidents[i].max_app_blast_fraction,
              b.incidents[i].max_app_blast_fraction);
  }
  EXPECT_EQ(a.worst_incident_recovery_hours, b.worst_incident_recovery_hours);
  EXPECT_EQ(a.max_app_blast_radius, b.max_app_blast_radius);
  EXPECT_EQ(a.sla_violation_intervals, b.sla_violation_intervals);
}

/// Everything except wall_seconds, which the determinism contract excludes
/// (a replayed cell carries the original cell's wall time).
void expect_results_equal(const SweepCellResult& a, const SweepCellResult& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.workload, b.workload);
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.planned, b.planned);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.error, b.error);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.provisioned_hosts, b.provisioned_hosts);
  EXPECT_EQ(a.total_migrations, b.total_migrations);
  expect_reports_equal(a.report, b.report);
  expect_robustness_equal(a.robustness, b.robustness);
}

struct TempFile {
  explicit TempFile(std::string name) : path(std::move(name)) {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
  std::string path;
};

TEST(SweepGridHash, DetectsEveryKindOfGridEdit) {
  const auto cells = faulted_grid();
  const std::uint64_t base = sweep_grid_hash(cells);
  EXPECT_EQ(base, sweep_grid_hash(faulted_grid()));  // stable across builds

  auto edited = faulted_grid();
  edited[2].seed += 1;
  EXPECT_NE(base, sweep_grid_hash(edited));

  edited = faulted_grid();
  edited[0].strategy = Strategy::kStochastic;
  EXPECT_NE(base, sweep_grid_hash(edited));

  edited = faulted_grid();
  edited[1].settings.dynamic_utilization_bound += 0.01;
  EXPECT_NE(base, sweep_grid_hash(edited));

  edited = faulted_grid();
  edited[3].faults.rack_outages_per_month += 1.0;
  EXPECT_NE(base, sweep_grid_hash(edited));

  edited = faulted_grid();
  edited[0].spec.target_avg_cpu_util *= 1.5;
  EXPECT_NE(base, sweep_grid_hash(edited));

  // Reordering and resizing are edits too.
  edited = faulted_grid();
  std::swap(edited[0], edited[1]);
  EXPECT_NE(base, sweep_grid_hash(edited));
  edited = faulted_grid();
  edited.pop_back();
  EXPECT_NE(base, sweep_grid_hash(edited));
}

TEST(SweepJournal, RoundTripsEveryResultField) {
  const auto cells = faulted_grid();
  const auto reference = SweepDriver().run(cells);

  TempFile journal_file("test_journal_roundtrip.bin");
  SweepOptions options;
  options.journal_path = journal_file.path;
  const auto journaled = SweepDriver().run(cells, options);
  ASSERT_EQ(journaled.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_results_equal(journaled[i], reference[i]);

  // Resume against the complete journal: every cell replays, none
  // recomputes, and the replayed bytes equal the originals.
  options.resume = true;
  const std::uint64_t replayed_before =
      MetricsRegistry::global().counter("sweep.journal.cells_replayed");
  const auto resumed = SweepDriver().run(cells, options);
  EXPECT_EQ(
      MetricsRegistry::global().counter("sweep.journal.cells_replayed"),
      replayed_before + cells.size());
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_results_equal(resumed[i], reference[i]);
}

TEST(SweepJournal, KilledSweepResumesByteIdenticalAtAnyThreadCount) {
  const auto cells = faulted_grid();
  const auto reference = SweepDriver().run(cells);

  // A complete journal to carve kill points from.
  TempFile full_journal("test_journal_resume_full.bin");
  SweepOptions options;
  options.journal_path = full_journal.path;
  (void)SweepDriver().run(cells, options);
  const auto full_size = std::filesystem::file_size(full_journal.path);

  // SIGKILL simulation: truncate the journal at an arbitrary byte — the
  // tail record is torn exactly as a crash mid-write would leave it. The
  // resumed run must replay the intact prefix, recompute the rest, and be
  // byte-identical to the uninterrupted reference at any thread count.
  const double kill_points[] = {0.35, 0.6, 0.85};
  const std::size_t threads[] = {1, 2, 8};
  for (std::size_t k = 0; k < 3; ++k) {
    TempFile partial("test_journal_resume_partial_" + std::to_string(k) +
                     ".bin");
    std::filesystem::copy_file(
        full_journal.path, partial.path,
        std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(
        partial.path,
        static_cast<std::uintmax_t>(kill_points[k] *
                                    static_cast<double>(full_size)));

    ThreadPool pool(threads[k]);
    ScopedPoolOverride scope(pool);
    SweepOptions resume = options;
    resume.journal_path = partial.path;
    resume.resume = true;
    const auto resumed = SweepDriver(&pool).run(cells, resume);
    ASSERT_EQ(resumed.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      expect_results_equal(resumed[i], reference[i]);
  }
}

TEST(SweepJournal, StaleJournalFromEditedGridIsDiscarded) {
  auto cells = faulted_grid();
  TempFile journal_file("test_journal_stale.bin");
  SweepOptions options;
  options.journal_path = journal_file.path;
  (void)SweepDriver().run(cells, options);

  // Edit the grid the way a user would between runs: one knob, one cell.
  cells[1].seed = 1234;
  const auto reference = SweepDriver().run(cells);

  options.resume = true;
  const std::uint64_t stale_before =
      MetricsRegistry::global().counter("sweep.journal.stale_discarded");
  const auto resumed = SweepDriver().run(cells, options);
  EXPECT_EQ(
      MetricsRegistry::global().counter("sweep.journal.stale_discarded"),
      stale_before + 1);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_results_equal(resumed[i], reference[i]);
}

TEST(SweepJournal, GarbageTailIsTruncatedNotTrusted) {
  const auto cells = faulted_grid();
  TempFile journal_file("test_journal_garbage.bin");
  SweepOptions options;
  options.journal_path = journal_file.path;
  const auto reference = SweepDriver().run(cells, options);

  {
    std::FILE* f = std::fopen(journal_file.path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char garbage[] = "\x01garbage-that-is-not-a-record";
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }

  options.resume = true;
  const auto resumed = SweepDriver().run(cells, options);
  ASSERT_EQ(resumed.size(), reference.size());
  for (std::size_t i = 0; i < reference.size(); ++i)
    expect_results_equal(resumed[i], reference[i]);
}

TEST(SweepIsolation, ThrowingCellFailsInItsSlotWithoutPerturbingSiblings) {
  const auto cells = faulted_grid();
  const auto reference = SweepDriver().run(cells);

  const std::size_t victim = 2;
  SweepOptions options;
  options.cell_hook = [victim](const SweepCell&, std::size_t index, int) {
    if (index == victim) throw std::runtime_error("injected cell failure");
  };
  const auto results = SweepDriver().run(cells, options);
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == victim) {
      EXPECT_EQ(results[i].status, CellStatus::kFailed);
      EXPECT_FALSE(results[i].planned);
      EXPECT_EQ(results[i].error, "injected cell failure");
      EXPECT_EQ(results[i].attempts, 1u);
    } else {
      expect_results_equal(results[i], reference[i]);
    }
  }
}

TEST(SweepIsolation, TimedOutCellsReportWithoutHangingTheSweep) {
  const auto cells = faulted_grid();
  SweepOptions options;
  // A deadline no real cell can meet: every cell must cancel cooperatively
  // at its first interval boundary — deterministically, at every thread
  // count — and the sweep itself must still return all slots.
  options.cell_deadline_seconds = 1e-9;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    const auto results = SweepDriver(&pool).run(cells, options);
    ASSERT_EQ(results.size(), cells.size());
    for (const auto& r : results) {
      EXPECT_EQ(r.status, CellStatus::kTimedOut) << r.index;
      EXPECT_FALSE(r.planned);
      EXPECT_EQ(r.attempts, 1u);
      EXPECT_FALSE(r.error.empty());
    }
  }
}

TEST(SweepRetry, TransientFailuresRetryUpToBudgetAndSucceed) {
  const auto cells = faulted_grid();
  const auto reference = SweepDriver().run(cells);

  const std::size_t flaky = 1;
  SweepOptions options;
  options.max_attempts = 3;
  options.cell_hook = [flaky](const SweepCell&, std::size_t index,
                              int attempt) {
    if (index == flaky && attempt < 3)
      throw std::runtime_error("transient failure");
  };
  const auto results = SweepDriver().run(cells, options);
  ASSERT_EQ(results.size(), reference.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i == flaky) {
      EXPECT_EQ(results[i].status, CellStatus::kOk);
      EXPECT_EQ(results[i].attempts, 3u);
      // The third attempt computes exactly what a first-try cell would.
      expect_reports_equal(results[i].report, reference[i].report);
    } else {
      EXPECT_EQ(results[i].attempts, 1u);
      expect_results_equal(results[i], reference[i]);
    }
  }
}

TEST(SweepRetry, ResumeContinuesTheJournaledAttemptCount) {
  const auto cells = faulted_grid();
  const std::size_t victim = 0;

  // Simulate a sweep that consumed one attempt of the victim cell and was
  // then killed before its terminal record: the journal holds exactly one
  // kAttemptFailed record.
  TempFile journal_file("test_journal_attempts.bin");
  {
    SweepJournal journal;
    const auto recovery =
        journal.open(journal_file.path, sweep_grid_hash(cells), cells.size(),
                     /*resume=*/false);
    EXPECT_TRUE(recovery.results.empty());
    journal.append_failed_attempt(victim, 1, CellStatus::kFailed,
                                  "attempt from the killed run");
    journal.close();
  }

  // The resumed sweep must continue at attempt 2, not restart at 1: with
  // max_attempts=2 and a hook that always throws, the cell exhausts its
  // budget on the very next try.
  SweepOptions options;
  options.journal_path = journal_file.path;
  options.resume = true;
  options.max_attempts = 2;
  options.cell_hook = [victim](const SweepCell&, std::size_t index, int) {
    if (index == victim) throw std::runtime_error("still failing");
  };
  const auto results = SweepDriver().run(cells, options);
  EXPECT_EQ(results[victim].status, CellStatus::kFailed);
  EXPECT_EQ(results[victim].attempts, 2u);

  // Terminal failures are terminal: resuming again — even with a hook that
  // would now succeed — replays the journaled failure instead of silently
  // granting a fresh budget.
  SweepOptions replay = options;
  replay.cell_hook = nullptr;
  const auto replayed = SweepDriver().run(cells, replay);
  EXPECT_EQ(replayed[victim].status, CellStatus::kFailed);
  EXPECT_EQ(replayed[victim].attempts, 2u);
  EXPECT_EQ(replayed[victim].error, "still failing");
}

}  // namespace
}  // namespace vmcw
