// Unit tests for the workload-pattern components (trace/patterns.h).

#include "trace/patterns.h"

#include <gtest/gtest.h>

#include "util/stats.h"

namespace vmcw {
namespace {

TEST(CalendarHelpers, HourDayWeekend) {
  EXPECT_EQ(hour_of_day(0), 0u);
  EXPECT_EQ(hour_of_day(25), 1u);
  EXPECT_EQ(day_of_month(0), 0u);
  EXPECT_EQ(day_of_month(24 * 29 + 5), 29u);
  EXPECT_EQ(day_of_month(24 * 30), 0u);  // wraps to the next month
  // Day 0 is Monday; days 5 and 6 are the weekend.
  EXPECT_FALSE(is_weekend(0));
  EXPECT_FALSE(is_weekend(4 * 24));
  EXPECT_TRUE(is_weekend(5 * 24));
  EXPECT_TRUE(is_weekend(6 * 24 + 23));
  EXPECT_FALSE(is_weekend(7 * 24));
}

TEST(DiurnalPattern, UnityOutsideBusinessHours) {
  Rng rng(1);
  const DiurnalPattern p(4.0, 9, 18, 0.0, rng);
  EXPECT_DOUBLE_EQ(p.at(3), 1.0);    // 3am
  EXPECT_DOUBLE_EQ(p.at(23), 1.0);   // 11pm
  EXPECT_DOUBLE_EQ(p.at(8), 1.0);    // just before opening
}

TEST(DiurnalPattern, PeaksMidWindow) {
  Rng rng(1);
  const DiurnalPattern p(4.0, 9, 18, 0.0, rng);
  // Raised cosine: max at window center (13:30), ~peak multiplier.
  EXPECT_NEAR(p.at(13), 4.0, 0.3);
  EXPECT_GT(p.at(13), p.at(10));
  EXPECT_GT(p.at(13), p.at(17));
  EXPECT_GE(p.at(10), 1.0);
}

TEST(DiurnalPattern, RepeatsDaily) {
  Rng rng(2);
  const DiurnalPattern p(3.0, 9, 18, 1.0, rng);
  for (std::size_t h = 0; h < 24; ++h)
    EXPECT_DOUBLE_EQ(p.at(h), p.at(h + kHoursPerDay * 5));
}

TEST(DiurnalPattern, PeakMultiplierBelowOneIsClamped) {
  Rng rng(3);
  const DiurnalPattern p(0.5, 9, 18, 0.0, rng);
  for (std::size_t h = 0; h < 24; ++h) EXPECT_DOUBLE_EQ(p.at(h), 1.0);
}

TEST(WeekendPattern, DampsOnlyWeekends) {
  const WeekendPattern p(0.5);
  EXPECT_DOUBLE_EQ(p.at(0), 1.0);
  EXPECT_DOUBLE_EQ(p.at(5 * 24 + 12), 0.5);
  EXPECT_DOUBLE_EQ(p.at(6 * 24), 0.5);
}

TEST(MonthEndPattern, BoostsFirstAndLastDays) {
  const MonthEndPattern p(2.0, 1);
  EXPECT_DOUBLE_EQ(p.at(0), 2.0);                 // day 0
  EXPECT_DOUBLE_EQ(p.at(24 * 15), 1.0);           // mid-month
  EXPECT_DOUBLE_EQ(p.at(24 * 29 + 3), 2.0);       // day 29
}

TEST(MonthEndPattern, WiderEdges) {
  const MonthEndPattern p(3.0, 2);
  EXPECT_DOUBLE_EQ(p.at(24 * 1), 3.0);
  EXPECT_DOUBLE_EQ(p.at(24 * 28), 3.0);
  EXPECT_DOUBLE_EQ(p.at(24 * 14), 1.0);
}

TEST(BatchWindowPattern, WindowAndOffLevels) {
  Rng rng(4);
  const BatchWindowPattern p(2, 4, 5.0, 0.3, /*start_jitter_hours=*/0, rng);
  EXPECT_DOUBLE_EQ(p.at(2), 5.0);
  EXPECT_DOUBLE_EQ(p.at(5), 5.0);
  EXPECT_DOUBLE_EQ(p.at(6), 0.3);
  EXPECT_DOUBLE_EQ(p.at(14), 0.3);
}

TEST(BatchWindowPattern, WrapsPastMidnight) {
  Rng rng(5);
  const BatchWindowPattern p(22, 4, 3.0, 0.5, 0, rng);
  EXPECT_DOUBLE_EQ(p.at(22), 3.0);
  EXPECT_DOUBLE_EQ(p.at(23), 3.0);
  EXPECT_DOUBLE_EQ(p.at(24), 3.0);  // 0:00 next day
  EXPECT_DOUBLE_EQ(p.at(25), 3.0);  // 1:00
  EXPECT_DOUBLE_EQ(p.at(26), 0.5);
}

TEST(Ar1Noise, MeanRevertsToZero) {
  Rng rng(6);
  Ar1Noise noise(0.8, 0.1);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += noise.next(rng);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(Ar1Noise, StationaryVariance) {
  Rng rng(7);
  const double rho = 0.8, sigma = 0.1;
  Ar1Noise noise(rho, sigma);
  double sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = noise.next(rng);
    sum_sq += x * x;
  }
  const double expected_var = sigma * sigma / (1 - rho * rho);
  EXPECT_NEAR(sum_sq / n / expected_var, 1.0, 0.05);
}

TEST(Ar1Noise, ZeroSigmaStaysZero) {
  Rng rng(8);
  Ar1Noise noise(0.9, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(noise.next(rng), 0.0);
}

TEST(BurstTrain, EmptyWhenDisabled) {
  Rng rng(9);
  const auto train = generate_burst_train(100, 0.0, 1.5, 10, 1.5, rng);
  for (double x : train) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(BurstTrain, NonNegativeAdditive) {
  Rng rng(10);
  const auto train = generate_burst_train(720, 2.0, 1.2, 20, 2.0, rng);
  for (double x : train) EXPECT_GE(x, 0.0);
}

TEST(BurstTrain, OccupancyScalesWithRate) {
  Rng rng(11);
  auto occupancy = [&](double rate) {
    const auto train = generate_burst_train(72000, rate, 1.5, 10, 1.5, rng);
    int busy = 0;
    for (double x : train) busy += x > 0;
    return static_cast<double>(busy) / train.size();
  };
  const double low = occupancy(0.2);
  const double high = occupancy(2.0);
  EXPECT_GT(high, 3.0 * low);
}

TEST(BurstTrain, MeanDurationApproximatelyGeometric) {
  Rng rng(12);
  const auto train = generate_burst_train(200000, 0.5, 1.5, 10, 3.0, rng);
  // Count mean run length of busy hours.
  int runs = 0;
  long busy = 0;
  bool in_run = false;
  for (double x : train) {
    if (x > 0) {
      ++busy;
      if (!in_run) ++runs;
      in_run = true;
    } else {
      in_run = false;
    }
  }
  ASSERT_GT(runs, 100);
  // Overlapping bursts merge runs, so the run length overshoots slightly.
  EXPECT_NEAR(static_cast<double>(busy) / runs, 3.0, 0.8);
}

TEST(BurstTrain, ZeroHoursIsEmpty) {
  Rng rng(13);
  EXPECT_TRUE(generate_burst_train(0, 1.0, 1.5, 10, 1.5, rng).empty());
}

}  // namespace
}  // namespace vmcw
