// Tests for heterogeneous consolidation-target pools and the pool-aware
// packer/emulator overloads.

#include "core/host_pool.h"

#include <gtest/gtest.h>

#include "core/binpack.h"
#include "core/emulator.h"
#include "hardware/catalog.h"
#include "test_helpers.h"

namespace vmcw {
namespace {

ServerSpec small_host() {
  ServerSpec s;
  s.model = "small";
  s.cpu_rpe2 = 100;
  s.memory_mb = 1000;
  s.idle_watts = 50;
  s.peak_watts = 100;
  return s;
}

ServerSpec big_host() {
  ServerSpec s;
  s.model = "big";
  s.cpu_rpe2 = 400;
  s.memory_mb = 4000;
  s.idle_watts = 120;
  s.peak_watts = 300;
  return s;
}

TEST(HostPool, UniformIsUnbounded) {
  const auto pool = HostPool::uniform(small_host());
  EXPECT_FALSE(pool.is_bounded());
  EXPECT_TRUE(pool.valid_host(1u << 20));
  EXPECT_EQ(pool.spec_of(12345).model, "small");
}

TEST(HostPool, ClassesOwnConsecutiveIndices) {
  const HostPool pool({{small_host(), 3}, {big_host(), 2}});
  EXPECT_TRUE(pool.is_bounded());
  EXPECT_EQ(pool.max_hosts(), 5u);
  for (std::size_t h : {0u, 1u, 2u}) EXPECT_EQ(pool.spec_of(h).model, "small");
  for (std::size_t h : {3u, 4u}) EXPECT_EQ(pool.spec_of(h).model, "big");
  EXPECT_FALSE(pool.valid_host(5));
}

TEST(HostPool, BoundedThenUnlimited) {
  const HostPool pool({{small_host(), 2}, {big_host(), HostClass::kUnlimited}});
  EXPECT_FALSE(pool.is_bounded());
  EXPECT_EQ(pool.spec_of(1).model, "small");
  EXPECT_EQ(pool.spec_of(2).model, "big");
  EXPECT_EQ(pool.spec_of(99999).model, "big");
}

TEST(HostPool, InvalidConfigurationsRejected) {
  EXPECT_THROW(HostPool({}), std::invalid_argument);
  EXPECT_THROW(HostPool({{small_host(), 0}}), std::invalid_argument);
  EXPECT_THROW(HostPool({{small_host(), HostClass::kUnlimited},
                         {big_host(), 2}}),
               std::invalid_argument);
}

TEST(HostPool, CapacityScalesWithBound) {
  const auto pool = HostPool::uniform(small_host());
  const auto cap = pool.capacity_of(0, 0.8);
  EXPECT_DOUBLE_EQ(cap.cpu_rpe2, 80.0);
  EXPECT_DOUBLE_EQ(cap.memory_mb, 800.0);
}

TEST(HostPool, ReferenceCapacityIsPerDimensionMax) {
  ServerSpec cpu_heavy = small_host();
  cpu_heavy.cpu_rpe2 = 1000;
  const HostPool pool({{cpu_heavy, 1}, {big_host(), 1}});
  const auto ref = pool.reference_capacity(1.0);
  EXPECT_DOUBLE_EQ(ref.cpu_rpe2, 1000.0);
  EXPECT_DOUBLE_EQ(ref.memory_mb, 4000.0);
}

TEST(FfdPackPool, UniformPoolMatchesLegacyApi) {
  Rng rng(3);
  std::vector<ResourceVector> sizes;
  for (int i = 0; i < 120; ++i)
    sizes.push_back({rng.uniform(1, 90), rng.uniform(10, 900)});
  const ResourceVector capacity{100, 1000};
  const auto legacy = ffd_pack(sizes, capacity);
  const auto pooled = ffd_pack(sizes, HostPool::uniform(small_host()), 1.0);
  ASSERT_TRUE(legacy && pooled);
  EXPECT_EQ(legacy->placement, pooled->placement);
  EXPECT_EQ(legacy->hosts_used, pooled->hosts_used);
}

TEST(FfdPackPool, FillsSmallClassThenOverflowsToBig) {
  // Four items of half a small host each: two fit the single small host,
  // the rest overflow to the big class.
  const HostPool pool({{small_host(), 1}, {big_host(), HostClass::kUnlimited}});
  const std::vector<ResourceVector> sizes{
      {50, 500}, {50, 500}, {50, 500}, {50, 500}};
  const auto result = ffd_pack(sizes, pool, 1.0);
  ASSERT_TRUE(result.has_value());
  // Host 0 (small) holds two; host 1 (big) holds the other two.
  EXPECT_EQ(result->hosts_used, 2u);
}

TEST(FfdPackPool, BoundedPoolExhaustionFails) {
  const HostPool pool({{small_host(), 2}});
  const std::vector<ResourceVector> sizes{
      {90, 100}, {90, 100}, {90, 100}};  // one per host, three needed
  EXPECT_FALSE(ffd_pack(sizes, pool, 1.0).has_value());
}

TEST(FfdPackPool, ItemTooBigForUnlimitedClassFails) {
  const HostPool pool({{small_host(), HostClass::kUnlimited}});
  const std::vector<ResourceVector> sizes{{150, 100}};
  EXPECT_FALSE(ffd_pack(sizes, pool, 1.0).has_value());
}

TEST(FfdPackPool, ItemSkipsSmallClassThatCannotHoldIt) {
  const HostPool pool({{small_host(), 2}, {big_host(), 1}});
  const std::vector<ResourceVector> sizes{{300, 2000}};  // only "big" fits
  const auto result = ffd_pack(sizes, pool, 1.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.host_of(0), 2);  // first big-class index
}

TEST(FfdPackPool, PinToInvalidHostFails) {
  const HostPool pool({{small_host(), 2}});
  ConstraintSet cs(1);
  cs.pin(0, 7);
  const std::vector<ResourceVector> sizes{{10, 10}};
  EXPECT_FALSE(ffd_pack(sizes, pool, 1.0, cs).has_value());
}

TEST(EmulatePool, UniformPoolMatchesLegacyApi) {
  const auto vms = testing::small_fleet(40);
  const auto settings = testing::small_settings();
  Placement p(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i)
    p.assign(i, static_cast<std::int32_t>(i % 5));
  const std::vector<Placement> schedule{p};
  const auto legacy = emulate(vms, schedule, settings, false);
  const auto pooled = emulate(vms, schedule, settings, false,
                              HostPool::uniform(settings.target));
  EXPECT_DOUBLE_EQ(legacy.energy_wh, pooled.energy_wh);
  EXPECT_EQ(legacy.hours_with_contention, pooled.hours_with_contention);
  ASSERT_EQ(legacy.host_avg_cpu_util.size(), pooled.host_avg_cpu_util.size());
  for (std::size_t h = 0; h < legacy.host_avg_cpu_util.size(); ++h)
    EXPECT_DOUBLE_EQ(legacy.host_avg_cpu_util[h], pooled.host_avg_cpu_util[h]);
}

TEST(EmulatePool, PerHostCapacityDrivesContention) {
  // Same demand on a small host contends; on a big host it does not.
  auto settings = testing::small_settings();
  std::vector<VmWorkload> vms{
      testing::constant_vm("v", 150.0, 500.0, 168)};  // > small cpu of 100
  Placement on_small(1), on_big(1);
  on_small.assign(0, 0);
  on_big.assign(0, 1);
  const HostPool pool({{small_host(), 1}, {big_host(), 1}});
  const std::vector<Placement> s1{on_small}, s2{on_big};
  const auto contended = emulate(vms, s1, settings, false, pool);
  const auto fine = emulate(vms, s2, settings, false, pool);
  EXPECT_GT(contended.hours_with_contention, 0u);
  EXPECT_EQ(fine.hours_with_contention, 0u);
}

TEST(EmulatePool, MixedPoolEnergyUsesPerHostPowerModels) {
  auto settings = testing::small_settings();
  std::vector<VmWorkload> vms{
      testing::constant_vm("a", 50.0, 100.0, 168),
      testing::constant_vm("b", 200.0, 100.0, 168)};
  Placement p(2);
  p.assign(0, 0);  // small host at util 0.5 -> 50 + 0.5*50 = 75 W
  p.assign(1, 1);  // big host at util 0.5 -> 120 + 0.5*180 = 210 W
  const HostPool pool({{small_host(), 1}, {big_host(), 1}});
  const std::vector<Placement> schedule{p};
  const auto report = emulate(vms, schedule, settings, false, pool);
  EXPECT_NEAR(report.energy_wh,
              (75.0 + 210.0) * static_cast<double>(settings.eval_hours),
              1e-6);
}

}  // namespace
}  // namespace vmcw
