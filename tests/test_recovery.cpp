// Bounded-time crash recovery: controller snapshots (atomic, checksummed,
// fleet-bound), WAL segment rotation with post-snapshot retention, the
// daemon's snapshot + WAL-suffix resume path (byte-identical to a cold
// full-WAL replay at any thread count), the batched single-fsync writer,
// the supervisor's restart/backoff/circuit-breaker policy, the
// deterministic SIGKILL schedule the chaos soak runs on, and the
// socket-level crash/restart and coalescing contracts.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "service/io_fault_hooks.h"
#include "chaos/io_faults.h"
#include "chaos/process_faults.h"
#include "runtime/bounded_queue.h"
#include "runtime/thread_pool.h"
#include "runtime/wire.h"
#include "service/churn.h"
#include "service/collector.h"
#include "service/daemon.h"
#include "service/ingest.h"
#include "service/snapshot.h"
#include "service/supervisor.h"
#include "service/telemetry_log.h"

namespace vmcw::service {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

std::vector<Frame> small_churn() {
  ChurnOptions churn;
  churn.agents = 4;
  churn.initial_vms = 24;
  churn.ticks = 8;
  churn.arrivals_per_tick = 1.5;
  churn.departure_prob = 0.05;
  churn.blackout_prob = 0.0;
  churn.mean_host_fraction = 0.3;
  churn.seed = 11;
  return generate_churn(churn, ControllerConfig{});
}

std::uint64_t fleet_hash() { return fleet_config_hash(ControllerConfig{}); }

/// Daemon options for the bounded-recovery tests: small segments and a
/// tight snapshot cadence so a short stream exercises rotation,
/// checkpointing and reclamation.
Daemon::Options bounded_options(const std::string& dir, bool resume,
                                bool retain) {
  Daemon::Options o;
  o.wal_path = dir + "/live.wal";
  o.decisions_path = dir + "/live.decisions";
  o.resume = resume;
  o.durable = true;
  o.segment_frames = 8;
  o.snapshot_path = dir + "/ctrl.snap";
  o.snapshot_every_frames = 16;
  o.retain_segments = retain;
  return o;
}

/// Feed frames [begin, end) through an open daemon, checkpointing on the
/// configured cadence after each apply (a direct-feed "batch" of one).
void feed(Daemon& daemon, const std::vector<Frame>& frames, std::size_t begin,
          std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    daemon.ingest(frames[i]);
    daemon.maybe_snapshot();
  }
}

/// Decision log of an uninterrupted direct-feed run over `frames`.
std::string reference_decisions(const std::string& dir,
                                const std::vector<Frame>& frames) {
  Daemon::Options o;
  o.wal_path = dir + "/ref.wal";
  o.decisions_path = dir + "/ref.decisions";
  Daemon daemon(ControllerConfig{}, o);
  daemon.open();
  for (const Frame& frame : frames) daemon.ingest(frame);
  daemon.close();
  return file_bytes(o.decisions_path);
}

// ------------------------------------------------------- snapshot format

SnapshotData sample_snapshot() {
  SnapshotData data;
  data.frames_covered = 42;
  data.batches_emitted = 7;
  data.shutdowns_covered = 3;
  data.controller_state = {1, 2, 3, 4, 5};
  data.ack_marks = {{"collector-0", 17}, {"collector-1", 9}};
  return data;
}

TEST(Snapshot, WriteReadRoundTrip) {
  const std::string dir = temp_dir("vmcw_rec_snap");
  const std::string path = dir + "/ctrl.snap";
  const SnapshotData data = sample_snapshot();
  ASSERT_TRUE(write_snapshot(path, 0xabcd, data));

  SnapshotData back;
  EXPECT_EQ(read_snapshot(path, 0xabcd, back), SnapshotStatus::kOk);
  EXPECT_EQ(back.frames_covered, data.frames_covered);
  EXPECT_EQ(back.batches_emitted, data.batches_emitted);
  EXPECT_EQ(back.shutdowns_covered, data.shutdowns_covered);
  EXPECT_EQ(back.controller_state, data.controller_state);
  EXPECT_EQ(back.ack_marks, data.ack_marks);

  // The write is atomic rename: no .tmp litter survives success.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Snapshot, RewriteReplacesAtomically) {
  const std::string dir = temp_dir("vmcw_rec_snap2");
  const std::string path = dir + "/ctrl.snap";
  SnapshotData data = sample_snapshot();
  ASSERT_TRUE(write_snapshot(path, 0xabcd, data));
  data.frames_covered = 100;
  data.ack_marks["collector-2"] = 50;
  ASSERT_TRUE(write_snapshot(path, 0xabcd, data));

  SnapshotData back;
  EXPECT_EQ(read_snapshot(path, 0xabcd, back), SnapshotStatus::kOk);
  EXPECT_EQ(back.frames_covered, 100u);
  EXPECT_EQ(back.ack_marks.size(), 3u);
}

TEST(Snapshot, MissingCorruptAndStaleAreDistinguished) {
  const std::string dir = temp_dir("vmcw_rec_snapbad");
  const std::string path = dir + "/ctrl.snap";
  SnapshotData out;
  EXPECT_EQ(read_snapshot(path, 0xabcd, out), SnapshotStatus::kMissing);

  ASSERT_TRUE(write_snapshot(path, 0xabcd, sample_snapshot()));
  // Valid file, wrong fleet: stale, not corrupt.
  EXPECT_EQ(read_snapshot(path, 0xdcba, out), SnapshotStatus::kStaleFleet);

  // Flip a payload byte: the checksum catches it.
  {
    std::string bytes = file_bytes(path);
    bytes[bytes.size() - 1] = static_cast<char>(bytes.back() ^ 0x40);
    std::ofstream(path, std::ios::binary) << bytes;
  }
  EXPECT_EQ(read_snapshot(path, 0xabcd, out), SnapshotStatus::kCorrupt);
  // A corrupt file must not masquerade as merely stale either.
  EXPECT_EQ(read_snapshot(path, 0xdcba, out), SnapshotStatus::kCorrupt);

  // Truncation: corrupt, not a crash.
  ASSERT_TRUE(write_snapshot(path, 0xabcd, sample_snapshot()));
  {
    const std::string bytes = file_bytes(path);
    std::ofstream(path, std::ios::binary)
        << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_EQ(read_snapshot(path, 0xabcd, out), SnapshotStatus::kCorrupt);

  // Garbage magic: corrupt.
  std::ofstream(path, std::ios::binary) << "not a snapshot at all";
  EXPECT_EQ(read_snapshot(path, 0xabcd, out), SnapshotStatus::kCorrupt);
}

// ------------------------------------------------ controller state bytes

TEST(ControllerState, SaveRestoreSaveIsByteStable) {
  const std::string dir = temp_dir("vmcw_rec_ctrlstate");
  const auto frames = small_churn();

  Daemon::Options o;
  o.wal_path = dir + "/state.wal";
  o.decisions_path = dir + "/state.decisions";
  Daemon daemon(ControllerConfig{}, o);
  daemon.open();
  for (const Frame& frame : frames) daemon.ingest(frame);

  wire::ByteWriter first;
  daemon.controller().save_state(first);
  ASSERT_FALSE(first.bytes().empty());

  IncrementalController restored(ControllerConfig{});
  wire::ByteReader r(first.bytes().data(), first.bytes().size());
  restored.restore_state(r);
  wire::ByteWriter second;
  restored.save_state(second);
  EXPECT_EQ(first.bytes(), second.bytes());
  daemon.close();
}

TEST(ControllerState, RestoreRejectsTruncatedBytes) {
  IncrementalController controller(ControllerConfig{});
  wire::ByteWriter w;
  controller.save_state(w);
  const auto& bytes = w.bytes();
  for (const std::size_t cut : {std::size_t{0}, bytes.size() / 2}) {
    IncrementalController victim(ControllerConfig{});
    wire::ByteReader r(bytes.data(), cut);
    if (cut == 0) continue;  // an empty record is trivially short
    EXPECT_THROW(victim.restore_state(r), std::runtime_error);
  }
  // Trailing junk is malformed too: a snapshot payload is exact.
  std::vector<std::uint8_t> padded = bytes;
  padded.push_back(0);
  IncrementalController victim(ControllerConfig{});
  wire::ByteReader r(padded.data(), padded.size());
  EXPECT_THROW(victim.restore_state(r), std::runtime_error);
}

// ------------------------------------------------------ segment rotation

TEST(SegmentedLog, RotatesSealsAndStitchesBackTogether) {
  const std::string dir = temp_dir("vmcw_rec_seg");
  const std::string path = dir + "/seg.wal";
  const auto frames = small_churn();

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), /*resume=*/false, /*segment_frames=*/8);
  for (const Frame& frame : frames) log.append(frame, /*sync=*/false);
  log.sync();
  log.close();

  // No single file at the root path; a chain of .segNNNNNN files instead.
  EXPECT_FALSE(fs::exists(path));
  EXPECT_TRUE(fs::exists(segment_path(path, 1)));
  EXPECT_GE(fs::file_size(segment_path(path, 1)), 28u);

  const WalContents wal = read_segmented_wal(path);
  EXPECT_EQ(wal.version, 2u);
  EXPECT_EQ(wal.base_ordinal, 0u);
  EXPECT_FALSE(wal.torn_tail);
  EXPECT_EQ(wal.frames, frames);

  // Resume recovers the identical stream and keeps appending in place.
  SegmentedFrameLog again;
  const auto rec = again.open(path, fleet_hash(), /*resume=*/true, 8);
  EXPECT_FALSE(rec.stale);
  EXPECT_FALSE(rec.torn_tail);
  EXPECT_EQ(rec.base_ordinal, 0u);
  EXPECT_EQ(rec.frames, frames);
  EXPECT_EQ(again.next_ordinal(), frames.size());
  again.close();
}

TEST(SegmentedLog, ZeroSegmentFramesIsByteCompatibleLegacyMode) {
  const std::string dir = temp_dir("vmcw_rec_seglegacy");
  const std::string path = dir + "/legacy.wal";
  const auto frames = small_churn();

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), false, /*segment_frames=*/0);
  for (const Frame& frame : frames) log.append(frame, /*sync=*/false);
  log.sync();
  log.close();

  // One plain version-1 file, readable by the original reader.
  EXPECT_TRUE(fs::exists(path));
  EXPECT_FALSE(fs::exists(segment_path(path, 1)));
  const WalContents direct = read_frame_log(path);
  EXPECT_EQ(direct.version, 1u);
  EXPECT_EQ(direct.frames, frames);
  EXPECT_EQ(read_segmented_wal(path).frames, frames);
}

TEST(SegmentedLog, TornTailInActiveSegmentIsTruncatedAway) {
  const std::string dir = temp_dir("vmcw_rec_segtorn");
  const std::string path = dir + "/torn.wal";
  const auto frames = small_churn();
  const std::size_t n = 20;  // seg1(8) seg2(8) seg3(4 active)

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), false, 8);
  for (std::size_t i = 0; i < n; ++i) log.append(frames[i], false);
  log.sync();
  log.close();

  // Garbage lands on the active segment's tail (a crash mid-append).
  {
    std::ofstream out(segment_path(path, 3),
                      std::ios::binary | std::ios::app);
    out << "torn torn torn";
  }
  SegmentedFrameLog again;
  const auto rec = again.open(path, fleet_hash(), true, 8);
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.frames,
            std::vector<Frame>(frames.begin(), frames.begin() + n));
  EXPECT_EQ(again.next_ordinal(), n);
  again.close();
}

TEST(SegmentedLog, CrashExactlyAtASealLeavesTheChainWhole) {
  const std::string dir = temp_dir("vmcw_rec_segseal");
  const std::string path = dir + "/seal.wal";
  const auto frames = small_churn();

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), false, 8);
  for (std::size_t i = 0; i < 18; ++i) log.append(frames[i], false);
  log.sync();
  log.close();

  // Simulate dying mid-rotation: the freshly created segment 3 got only a
  // partial header onto disk.
  fs::resize_file(segment_path(path, 3), 10);

  SegmentedFrameLog again;
  const auto rec = again.open(path, fleet_hash(), true, 8);
  // The partial file is unlinked; every sealed frame survives.
  EXPECT_EQ(rec.frames,
            std::vector<Frame>(frames.begin(), frames.begin() + 16));
  EXPECT_FALSE(fs::exists(segment_path(path, 3)));
  EXPECT_EQ(again.next_ordinal(), 16u);

  // Appending resumes seamlessly: the next append re-seals and rotates.
  for (std::size_t i = 16; i < frames.size(); ++i)
    again.append(frames[i], false);
  again.sync();
  again.close();
  EXPECT_EQ(read_segmented_wal(path).frames, frames);
}

TEST(SegmentedLog, TornSealedSegmentEndsTheChainThere) {
  const std::string dir = temp_dir("vmcw_rec_segmid");
  const std::string path = dir + "/mid.wal";
  const auto frames = small_churn();

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), false, 8);
  for (std::size_t i = 0; i < 20; ++i) log.append(frames[i], false);
  log.sync();
  log.close();

  // Chop the tail off sealed segment 2: its last frame is now torn, and
  // nothing after an invalid seal is trustworthy.
  fs::resize_file(segment_path(path, 2),
                  fs::file_size(segment_path(path, 2)) - 5);

  SegmentedFrameLog again;
  const auto rec = again.open(path, fleet_hash(), true, 8);
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_EQ(rec.frames.size(), 15u);  // 8 + 7: seg2 lost its final frame
  EXPECT_EQ(rec.frames, std::vector<Frame>(frames.begin(),
                                           frames.begin() + 15));
  EXPECT_FALSE(fs::exists(segment_path(path, 3)));  // unlinked
  again.close();
}

TEST(SegmentedLog, MissingMiddleSegmentTruncatesTheChain) {
  const std::string dir = temp_dir("vmcw_rec_seggap");
  const std::string path = dir + "/gap.wal";
  const auto frames = small_churn();

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), false, 8);
  for (std::size_t i = 0; i < 20; ++i) log.append(frames[i], false);
  log.sync();
  log.close();

  fs::remove(segment_path(path, 2));

  SegmentedFrameLog again;
  const auto rec = again.open(path, fleet_hash(), true, 8);
  EXPECT_EQ(rec.frames,
            std::vector<Frame>(frames.begin(), frames.begin() + 8));
  EXPECT_FALSE(fs::exists(segment_path(path, 3)));  // beyond the gap
  again.close();
}

TEST(SegmentedLog, ReclaimBeforeUnlinksOnlyWhollyCoveredSealedSegments) {
  const std::string dir = temp_dir("vmcw_rec_segreclaim");
  const std::string path = dir + "/reclaim.wal";
  const auto frames = small_churn();

  SegmentedFrameLog log;
  log.open(path, fleet_hash(), false, 4);
  for (std::size_t i = 0; i < 10; ++i) log.append(frames[i], false);
  log.sync();

  // Segments: 1 covers [0,4), 2 covers [4,8), active 3 holds [8,10).
  EXPECT_EQ(log.reclaim_before(7), 1u);  // only segment 1 is wholly below
  EXPECT_FALSE(fs::exists(segment_path(path, 1)));
  EXPECT_TRUE(fs::exists(segment_path(path, 2)));
  EXPECT_EQ(log.reclaim_before(8), 1u);  // now segment 2 too
  EXPECT_EQ(log.reclaim_before(10), 0u);  // the active segment never goes
  EXPECT_TRUE(fs::exists(segment_path(path, 3)));
  log.close();

  // The surviving chain reads back with the reclaimed prefix as its base.
  const WalContents wal = read_segmented_wal(path);
  EXPECT_EQ(wal.base_ordinal, 8u);
  EXPECT_EQ(wal.frames,
            std::vector<Frame>(frames.begin() + 8, frames.begin() + 10));

  // A cold replay of a reclaimed chain must refuse, not silently skip.
  EXPECT_THROW(replay_wal(path, dir + "/never.decisions", ControllerConfig{},
                          /*resume=*/false),
               std::runtime_error);
}

// -------------------------------------------- daemon snapshot recovery

TEST(Recovery, SnapshotPlusSuffixMatchesColdReplayAtAnyThreadCount) {
  const std::string dir = temp_dir("vmcw_rec_threads");
  const auto frames = small_churn();
  const std::size_t cut = frames.size() * 2 / 3;

  // Reference: uninterrupted run over the whole stream.
  const std::string ref = reference_decisions(dir, frames);
  ASSERT_FALSE(ref.empty());

  // Phase 1: live run up to the cut, snapshots on, full chain retained so
  // the cold replay below still has frame zero.
  {
    Daemon daemon(ControllerConfig{}, bounded_options(dir, false, true));
    daemon.open();
    feed(daemon, frames, 0, cut);
    daemon.close();
    EXPECT_GT(daemon.stats().snapshots_written, 0u);
    EXPECT_EQ(daemon.stats().segments_reclaimed, 0u);
  }

  // Phase 2, three times from identical disk images: resume under 1, 2
  // and 8 worker threads must produce byte-identical decision logs.
  std::vector<std::string> decisions;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::string copy =
        dir + "/resume_t" + std::to_string(threads);
    fs::create_directories(copy);
    for (const auto& entry : fs::directory_iterator(dir))
      if (entry.is_regular_file())
        fs::copy_file(entry.path(),
                      fs::path(copy) / entry.path().filename());

    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    Daemon daemon(ControllerConfig{}, bounded_options(copy, true, true));
    const auto opened = daemon.open();
    EXPECT_TRUE(opened.snapshot_loaded);
    EXPECT_GE(opened.snapshot_frames, 16u);
    // Bounded recovery: only the suffix past the snapshot was re-applied.
    EXPECT_EQ(opened.frames_recovered, cut - opened.snapshot_frames);
    feed(daemon, frames, cut, frames.size());
    daemon.close();
    decisions.push_back(file_bytes(copy + "/live.decisions"));
    EXPECT_EQ(decisions.back(), ref)
        << "snapshot recovery diverged at " << threads << " threads";

    // ...and the cold full-WAL replay of the finished chain agrees too.
    const std::string replayed = copy + "/cold.decisions";
    replay_wal(copy + "/live.wal", replayed, ControllerConfig{},
               /*resume=*/false, /*durable=*/false);
    EXPECT_EQ(file_bytes(replayed), ref)
        << "cold replay diverged at " << threads << " threads";
  }
  EXPECT_EQ(decisions[0], decisions[1]);
  EXPECT_EQ(decisions[0], decisions[2]);
}

TEST(Recovery, ReclamationBoundsTheChainAndRecoveryStillMatches) {
  const std::string dir = temp_dir("vmcw_rec_reclaim");
  const auto frames = small_churn();
  const std::size_t cut = frames.size() * 2 / 3;
  const std::string ref = reference_decisions(dir, frames);

  DaemonStats phase1;
  {
    Daemon daemon(ControllerConfig{}, bounded_options(dir, false, false));
    daemon.open();
    feed(daemon, frames, 0, cut);
    daemon.close();
    phase1 = daemon.stats();
  }
  EXPECT_GT(phase1.snapshots_written, 0u);
  EXPECT_GT(phase1.segments_reclaimed, 0u);

  // The head is gone: a cold replay refuses...
  EXPECT_GT(read_segmented_wal(dir + "/live.wal").base_ordinal, 0u);
  EXPECT_THROW(replay_wal(dir + "/live.wal", dir + "/cold.decisions",
                          ControllerConfig{}, false),
               std::runtime_error);

  // ...but snapshot recovery bridges the reclaimed prefix and the finished
  // run is still byte-identical to the uninterrupted reference.
  Daemon daemon(ControllerConfig{}, bounded_options(dir, true, false));
  const auto opened = daemon.open();
  EXPECT_TRUE(opened.snapshot_loaded);
  feed(daemon, frames, cut, frames.size());
  daemon.close();
  EXPECT_EQ(file_bytes(dir + "/live.decisions"), ref);
}

TEST(Recovery, ReclaimedHeadWithoutUsableSnapshotRefuses) {
  const std::string dir = temp_dir("vmcw_rec_nosnap");
  const auto frames = small_churn();
  {
    Daemon daemon(ControllerConfig{}, bounded_options(dir, false, false));
    daemon.open();
    feed(daemon, frames, 0, frames.size() * 2 / 3);
    daemon.close();
    ASSERT_GT(daemon.stats().segments_reclaimed, 0u);
  }
  // The snapshot vanishes (disk swap, fat-fingered rm): resuming must
  // refuse loudly instead of replaying a beheaded chain as if complete.
  fs::remove(dir + "/ctrl.snap");
  Daemon daemon(ControllerConfig{}, bounded_options(dir, true, false));
  EXPECT_THROW(daemon.open(), std::runtime_error);
}

TEST(Recovery, StaleFleetSnapshotFallsBackToFullReplay) {
  const std::string dir = temp_dir("vmcw_rec_stalesnap");
  const auto frames = small_churn();
  const std::size_t cut = frames.size() * 2 / 3;
  {
    Daemon daemon(ControllerConfig{}, bounded_options(dir, false, true));
    daemon.open();
    feed(daemon, frames, 0, cut);
    daemon.close();
  }
  // Overwrite the snapshot with one from a different fleet configuration.
  SnapshotData foreign = sample_snapshot();
  foreign.frames_covered = 16;
  ASSERT_TRUE(write_snapshot(dir + "/ctrl.snap", fleet_hash() ^ 0x5a5a,
                             foreign));

  Daemon daemon(ControllerConfig{}, bounded_options(dir, true, true));
  const auto opened = daemon.open();
  EXPECT_FALSE(opened.snapshot_loaded);
  EXPECT_EQ(opened.frames_recovered, cut);  // full replay
  daemon.close();
}

TEST(Recovery, SnapshotPastTheSurvivingChainIsRefused) {
  const std::string dir = temp_dir("vmcw_rec_snapgap");
  const auto frames = small_churn();
  const std::size_t cut = 60 < frames.size() ? 60 : frames.size();
  {
    Daemon daemon(ControllerConfig{}, bounded_options(dir, false, true));
    daemon.open();
    feed(daemon, frames, 0, cut);
    daemon.close();
    ASSERT_GT(daemon.stats().snapshots_written, 1u);
  }
  // Losing a middle segment truncates the chain below what the snapshot
  // covers; the snapshot references frames that no longer exist, so it is
  // refused and the surviving prefix replays cold.
  fs::remove(segment_path(dir + "/live.wal", 2));
  Daemon daemon(ControllerConfig{}, bounded_options(dir, true, true));
  const auto opened = daemon.open();
  EXPECT_FALSE(opened.snapshot_loaded);
  EXPECT_EQ(opened.frames_recovered, 8u);  // segment 1 only
  daemon.close();
}

TEST(Recovery, FreshOpenRemovesTheStreamsOldSnapshot) {
  const std::string dir = temp_dir("vmcw_rec_freshsnap");
  const auto frames = small_churn();
  {
    Daemon daemon(ControllerConfig{}, bounded_options(dir, false, true));
    daemon.open();
    feed(daemon, frames, 0, frames.size() * 2 / 3);
    daemon.close();
  }
  ASSERT_TRUE(fs::exists(dir + "/ctrl.snap"));
  // A non-resume open starts a new stream; the old stream's snapshot must
  // not survive to be mistaken for a checkpoint of the new one.
  Daemon daemon(ControllerConfig{}, bounded_options(dir, false, true));
  daemon.open();
  EXPECT_FALSE(fs::exists(dir + "/ctrl.snap"));
  daemon.close();
}

// --------------------------------------------------- batched WAL writes

/// Hooks that count fdatasync calls (and pass them through).
class CountingSyncHooks : public WalIoHooks {
 public:
  int sync(int fd) override {
    ++syncs_;
    return WalIoHooks::sync(fd);
  }
  std::uint64_t syncs() const noexcept { return syncs_; }

 private:
  std::uint64_t syncs_ = 0;
};

TEST(Recovery, AppendManyIssuesOneSyncForTheWholeBatch) {
  const std::string dir = temp_dir("vmcw_rec_batchsync");
  const auto frames = small_churn();
  const std::vector<Frame> batch(frames.begin(), frames.begin() + 10);

  Daemon::Options o;
  o.wal_path = dir + "/batch.wal";
  o.decisions_path = dir + "/batch.decisions";
  CountingSyncHooks hooks;
  Daemon daemon(ControllerConfig{}, o);
  daemon.set_io_hooks(&hooks);
  daemon.open();

  const std::uint64_t before = hooks.syncs();
  daemon.append_many(batch);
  EXPECT_EQ(hooks.syncs() - before, 1u);  // ten frames, one fdatasync

  // The per-frame path costs one sync per frame; that is the difference
  // the writer batching buys.
  const std::uint64_t single = hooks.syncs();
  daemon.ingest(frames[10]);
  daemon.ingest(frames[11]);
  EXPECT_GE(hooks.syncs() - single, 2u);
  daemon.close();
}

TEST(BoundedQueueDrain, MovesUpToMaxInArrivalOrder) {
  BoundedQueue<int> q(8);
  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(q.push(i));

  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.drain(out, 10), 2u);  // takes what is there
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(q.drain(out, 10), 0u);  // empty: returns immediately
  EXPECT_EQ(out.size(), 5u);
}

// ------------------------------------------------------ supervisor policy

TEST(SupervisorPolicy, BackoffDoublesToCapAndProgressResets) {
  SupervisorOptions o;
  o.backoff_base_seconds = 0.05;
  o.backoff_cap_seconds = 0.4;
  o.storm_restarts = 0;  // breaker off for this test
  SupervisorPolicy policy(o);

  EXPECT_DOUBLE_EQ(policy.on_exit(0.0).value(), 0.05);
  EXPECT_DOUBLE_EQ(policy.on_exit(1.0).value(), 0.10);
  EXPECT_DOUBLE_EQ(policy.on_exit(2.0).value(), 0.20);
  EXPECT_DOUBLE_EQ(policy.on_exit(3.0).value(), 0.40);
  EXPECT_DOUBLE_EQ(policy.on_exit(4.0).value(), 0.40);  // capped
  EXPECT_EQ(policy.consecutive_failures(), 5u);

  policy.on_progress(5.0);  // the daemon did real work
  EXPECT_EQ(policy.consecutive_failures(), 0u);
  EXPECT_DOUBLE_EQ(policy.on_exit(6.0).value(), 0.05);  // schedule restarts
  EXPECT_EQ(policy.exits(), 6u);
}

TEST(SupervisorPolicy, RestartStormOpensTheCircuitBreaker) {
  SupervisorOptions o;
  o.storm_restarts = 3;
  o.storm_window_seconds = 10.0;
  SupervisorPolicy policy(o);

  EXPECT_TRUE(policy.on_exit(0.0).has_value());
  EXPECT_TRUE(policy.on_exit(1.0).has_value());
  EXPECT_FALSE(policy.on_exit(2.0).has_value());  // third inside the window
  EXPECT_TRUE(policy.circuit_open());
  EXPECT_FALSE(policy.on_exit(100.0).has_value());  // open stays open
}

TEST(SupervisorPolicy, SlowCrashesOutsideTheWindowNeverTrip) {
  SupervisorOptions o;
  o.storm_restarts = 3;
  o.storm_window_seconds = 10.0;
  SupervisorPolicy policy(o);
  for (double t = 0.0; t < 200.0; t += 20.0)
    EXPECT_TRUE(policy.on_exit(t).has_value()) << "at t=" << t;
  EXPECT_FALSE(policy.circuit_open());
}

TEST(SupervisorPolicy, HangDetectionKeysOnHeartbeatSilence) {
  SupervisorOptions o;
  o.hang_after_seconds = 5.0;
  const SupervisorPolicy policy(o);
  EXPECT_FALSE(policy.hung(8.0, 4.0));
  EXPECT_TRUE(policy.hung(9.0, 4.0));
  EXPECT_TRUE(policy.hung(100.0, 4.0));

  SupervisorOptions off;
  off.hang_after_seconds = 0.0;  // watchdog disabled
  const SupervisorPolicy lax(off);
  EXPECT_FALSE(lax.hung(1e9, 0.0));
}

// ----------------------------------------------------- process fault plan

TEST(ProcessFaultPlan, SameSeedSameKillSchedule) {
  ProcessFaultSpec spec;
  spec.kills = 5;
  spec.min_uptime_seconds = 0.2;
  spec.max_uptime_seconds = 1.0;
  const ProcessFaultPlan a = ProcessFaultPlan::generate(spec, 42);
  const ProcessFaultPlan b = ProcessFaultPlan::generate(spec, 42);
  const ProcessFaultPlan c = ProcessFaultPlan::generate(spec, 43);

  bool differs = false;
  for (std::size_t run = 0; run < 5; ++run) {
    EXPECT_DOUBLE_EQ(a.kill_after_seconds(run), b.kill_after_seconds(run));
    EXPECT_GE(a.kill_after_seconds(run), 0.2);
    EXPECT_LE(a.kill_after_seconds(run), 1.0);
    differs = differs ||
              a.kill_after_seconds(run) != c.kill_after_seconds(run);
  }
  EXPECT_TRUE(differs);
  // Runs past the kill budget live.
  EXPECT_LT(a.kill_after_seconds(5), 0.0);
  EXPECT_LT(a.kill_after_seconds(100), 0.0);
  EXPECT_EQ(a.kills(), 5u);
}

TEST(ProcessFaultPlan, ScriptedKillsOverrideAndEmptyPlanIsQuiet) {
  ProcessFaultPlan plan;  // no kills at all
  EXPECT_LT(plan.kill_after_seconds(0), 0.0);
  EXPECT_EQ(plan.kills(), 0u);

  plan.force_kill(2, 0.75);
  EXPECT_LT(plan.kill_after_seconds(1), 0.0);
  EXPECT_DOUBLE_EQ(plan.kill_after_seconds(2), 0.75);
  EXPECT_EQ(plan.kills(), 1u);

  ProcessFaultSpec spec;
  spec.kills = 2;
  ProcessFaultPlan hashed = ProcessFaultPlan::generate(spec, 7);
  hashed.force_kill(0, 0.1);  // scripted beats hashed for the same run
  EXPECT_DOUBLE_EQ(hashed.kill_after_seconds(0), 0.1);
  EXPECT_EQ(hashed.kills(), 2u);

  ProcessFaultSpec hostile;
  hostile.min_uptime_seconds = -3.0;
  hostile.max_uptime_seconds = -7.0;
  const ProcessFaultSpec sane = hostile.validated();
  EXPECT_GE(sane.min_uptime_seconds, 0.0);
  EXPECT_GE(sane.max_uptime_seconds, sane.min_uptime_seconds);
}

// ----------------------------------------- sockets: batching, coalescing,
// ----------------------------------------- crash/restart under recovery

struct ServeResult {
  IngestStats ingest;
  DaemonStats daemon;
  std::vector<CollectorStats> collectors;
};

/// One daemon + IngestServer + N in-process collectors, to completion.
ServeResult serve_churn(const std::string& dir,
                        const std::vector<Frame>& frames,
                        std::size_t collectors, std::size_t agents,
                        const IoFaultPlan* plan, IngestOptions options,
                        bool coalesce) {
  Daemon::Options daemon_options;
  daemon_options.wal_path = dir + "/live.wal";
  daemon_options.decisions_path = dir + "/live.decisions";
  daemon_options.durable = true;
  Daemon daemon(ControllerConfig{}, daemon_options);
  const auto opened = daemon.open();

  options.unix_path = dir + "/ingest.sock";
  options.expected_shutdowns = collectors;
  IngestServer server(daemon, options);
  server.start(opened.wal_frames);

  const auto parts = partition_stream(frames, collectors, agents);
  ServeResult result;
  result.collectors.resize(collectors);
  std::vector<std::thread> clients;
  clients.reserve(collectors);
  for (std::size_t i = 0; i < collectors; ++i) {
    clients.emplace_back([&, i] {
      CollectorOptions copts;
      copts.unix_path = options.unix_path;
      copts.peer = "collector-" + std::to_string(i);
      copts.fleet_hash = fleet_hash();
      copts.coalesce_telemetry = coalesce;
      std::optional<PlannedTransportFaults> faults;
      if (plan != nullptr && plan->any()) faults.emplace(*plan, i);
      CollectorClient client(copts, faults ? &*faults : nullptr);
      result.collectors[i] = client.run(parts[i]);
    });
  }
  for (auto& t : clients) t.join();
  server.wait();
  daemon.close();
  result.ingest = server.stats();
  result.daemon = daemon.stats();
  return result;
}

void expect_replay_identity(const std::string& dir) {
  const std::string live = file_bytes(dir + "/live.decisions");
  ASSERT_FALSE(live.empty());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::string replayed = dir + "/replay_t" + std::to_string(threads);
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    replay_wal(dir + "/live.wal", replayed, ControllerConfig{},
               /*resume=*/false, /*durable=*/false);
    EXPECT_EQ(file_bytes(replayed), live) << "at " << threads << " threads";
  }
}

TEST(IngestBatching, BatchedWriterKeepsDeliveryAndReplayIdentity) {
  const std::string dir = temp_dir("vmcw_rec_batchserve");
  const auto frames = small_churn();
  IngestOptions options;
  options.max_batch_frames = 32;
  const auto result = serve_churn(dir, frames, /*collectors=*/3,
                                  /*agents=*/4, nullptr, options, false);

  std::size_t expected = 0;
  for (const auto& part : partition_stream(frames, 3, 4))
    expected += part.size();
  EXPECT_EQ(result.ingest.messages_ingested, expected);
  EXPECT_EQ(result.ingest.shutdowns_seen, 3u);
  // Batching happened: the writer drained in fewer fsyncs than messages.
  EXPECT_GE(result.ingest.wal_batches, 1u);
  EXPECT_LE(result.ingest.wal_batches, result.ingest.messages_ingested);
  expect_replay_identity(dir);
}

TEST(Coalescing, DisconnectedBacklogMergesSupersededTelemetry) {
  const std::string dir = temp_dir("vmcw_rec_coalesce");
  const auto frames = small_churn();

  IoFaultSpec spec;
  spec.disconnect_rate = 0.12;
  const IoFaultPlan plan = IoFaultPlan::generate(spec, 21);
  const auto result = serve_churn(dir, frames, /*collectors=*/2,
                                  /*agents=*/4, &plan, {}, /*coalesce=*/true);

  // Coalescing rewrites frames, never drops them: every partition message
  // still arrives, and the WAL the run produced still replays identically.
  std::size_t expected = 0;
  for (const auto& part : partition_stream(frames, 2, 4))
    expected += part.size();
  EXPECT_EQ(result.ingest.messages_ingested, expected);

  std::size_t coalesced = 0, reconnects = 0;
  for (const auto& stats : result.collectors) {
    coalesced += stats.samples_coalesced;
    reconnects += stats.reconnects;
  }
  EXPECT_GT(reconnects, 0u);
  EXPECT_GT(coalesced, 0u);
  expect_replay_identity(dir);
}

TEST(Recovery, DaemonCrashMidIngestRecoversAndFinishesIdentically) {
  const std::string dir = temp_dir("vmcw_rec_soak");
  const auto frames = small_churn();
  const auto stream = partition_stream(frames, 1, 4)[0];
  const std::string ref = reference_decisions(dir, stream);

  // Phase 1: a live daemon with snapshots + segments + reclamation, made
  // slow by an injected fsync stall so the "crash" lands mid-ingest.
  IoFaultPlan stall;
  stall.force_stall_window(0, 1u << 20, 0.02);
  StallingWalHooks hooks(stall);

  Daemon::Options opts = bounded_options(dir, false, false);
  opts.snapshot_every_frames = 8;
  Daemon d1(ControllerConfig{}, opts);
  d1.set_io_hooks(&hooks);
  const auto opened1 = d1.open();

  IngestOptions io1;
  io1.unix_path = dir + "/ingest.sock";
  io1.expected_shutdowns = 0;  // phase 1 ends by "crash", not Shutdown
  io1.max_batch_frames = 4;
  io1.shed_fsync_seconds = 1.0;  // the stall is load, not a disk death
  io1.recover_fsync_seconds = 0.5;
  io1.health_path = dir + "/health";
  IngestServer s1(d1, io1);
  s1.start(opened1.wal_frames);

  CollectorStats cstats;
  std::string collector_error;
  std::thread collector([&] {
    try {
      CollectorOptions copts;
      copts.unix_path = io1.unix_path;
      copts.peer = "collector-0";
      copts.fleet_hash = fleet_hash();
      CollectorClient client(copts);
      cstats = client.run(stream);
    } catch (const std::exception& e) {
      collector_error = e.what();
    }
  });

  while (s1.stats().messages_ingested < 24)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  s1.stop();  // SIGKILL stand-in: no drain courtesy beyond durability
  s1.wait();
  d1.close();
  EXPECT_GT(d1.stats().snapshots_written, 0u);
  EXPECT_GT(d1.stats().segments_reclaimed, 0u);
  EXPECT_TRUE(fs::exists(dir + "/health"));

  // Phase 2: resume from the snapshot; the same collector session is
  // still live and reconnects. If the post-restart Ack rewind were broken
  // this would livelock on OutOfOrder rejects until the collector's
  // max_attempts throw surfaced below.
  Daemon::Options opts2 = bounded_options(dir, true, false);
  opts2.snapshot_every_frames = 8;
  Daemon d2(ControllerConfig{}, opts2);
  const auto opened2 = d2.open();
  EXPECT_TRUE(opened2.snapshot_loaded);
  EXPECT_GE(opened2.snapshot_frames, 8u);

  IngestOptions io2 = io1;
  io2.expected_shutdowns = 0;  // the collector's return drives shutdown
  IngestServer s2(d2, io2);
  s2.start(opened2.wal_frames, opened2.ack_marks);
  collector.join();
  EXPECT_EQ(collector_error, "");
  s2.stop();
  s2.wait();
  d2.close();

  // Exactly one Shutdown in the stream, landing in whichever phase the
  // crash left it to.
  EXPECT_EQ(s1.stats().shutdowns_seen + s2.stats().shutdowns_seen, 1u);
  // The reclaimed-head chain is no longer cold-replayable; the decision
  // log is the identity check, and it matches the uninterrupted run.
  EXPECT_EQ(file_bytes(dir + "/live.decisions"), ref);
}

// A kill that lands after every collector delivered its Shutdown leaves a
// stream whose quota is already durable. The collectors were acked and
// exited — nothing will ever resend — so the restarted daemon must count
// the recovered Shutdowns and end its serve run with zero traffic, or a
// supervisor would hang-kill it in a loop forever.
TEST(Recovery, RestartAfterCompletedIngestExitsWithoutTraffic) {
  const std::string dir = temp_dir("vmcw_rec_done");
  const auto frames = small_churn();
  const std::size_t collectors = 2;

  Daemon::Options opts = bounded_options(dir, false, false);
  Daemon d1(ControllerConfig{}, opts);
  const auto opened1 = d1.open();
  IngestOptions io;
  io.unix_path = dir + "/ingest.sock";
  io.expected_shutdowns = collectors;
  IngestServer s1(d1, io);
  s1.start(opened1.wal_frames);

  const auto parts = partition_stream(frames, collectors, 4);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < collectors; ++i) {
    clients.emplace_back([&, i] {
      CollectorOptions copts;
      copts.unix_path = io.unix_path;
      copts.peer = "collector-" + std::to_string(i);
      copts.fleet_hash = fleet_hash();
      CollectorClient(copts).run(parts[i]);
    });
  }
  for (auto& t : clients) t.join();
  s1.wait();
  d1.close();
  EXPECT_EQ(s1.stats().shutdowns_seen, collectors);
  const std::string decisions = file_bytes(dir + "/live.decisions");
  ASSERT_FALSE(decisions.empty());

  // Restart 1: the Shutdowns sit in the WAL suffix past the newest
  // snapshot (and possibly under it — either source must reach the
  // quota). wait() returning at all, with no client connected, IS the
  // regression check.
  Daemon::Options ropts = bounded_options(dir, true, false);
  Daemon d2(ControllerConfig{}, ropts);
  const auto opened2 = d2.open();
  EXPECT_EQ(opened2.shutdowns_recovered, collectors);
  IngestServer s2(d2, io);
  s2.start(opened2.wal_frames, opened2.ack_marks, opened2.shutdowns_recovered);
  s2.wait();
  EXPECT_EQ(s2.stats().shutdowns_seen, collectors);
  // Checkpoint past the Shutdowns so the next restart must get the count
  // from the snapshot alone (the suffix behind it is reclaimed).
  EXPECT_TRUE(d2.write_snapshot_now());
  d2.close();

  // Restart 2: empty suffix, snapshot-carried count.
  Daemon d3(ControllerConfig{}, ropts);
  const auto opened3 = d3.open();
  EXPECT_TRUE(opened3.snapshot_loaded);
  EXPECT_EQ(opened3.frames_recovered, 0u);
  EXPECT_EQ(opened3.shutdowns_recovered, collectors);
  IngestServer s3(d3, io);
  s3.start(opened3.wal_frames, opened3.ack_marks, opened3.shutdowns_recovered);
  s3.wait();
  d3.close();
  EXPECT_EQ(s3.stats().shutdowns_seen, collectors);

  // Neither restart may disturb the decision log.
  EXPECT_EQ(file_bytes(dir + "/live.decisions"), decisions);
}

}  // namespace
}  // namespace vmcw::service
