// Unit tests for the pre-copy live-migration model and reservation study
// (Section 4.3 / Observation 4).

#include <gtest/gtest.h>

#include "migration/precopy.h"
#include "migration/reservation_study.h"

namespace vmcw {
namespace {

MigrationConfig idle_host_config() {
  MigrationConfig c;
  c.host_cpu_utilization = 0.2;
  c.host_mem_utilization = 0.5;
  return c;
}

TEST(Precopy, ConvergesOnIdleHost) {
  const auto r = simulate_precopy(idle_host_config());
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.rounds, 0);
  EXPECT_LE(r.downtime_ms, idle_host_config().downtime_target_ms * 1.01);
}

TEST(Precopy, ClarkScaleNumbers) {
  // Clark et al. (NSDI'05) report ~60 s migration and sub-second downtime
  // for a SpecWeb-like VM over gigabit Ethernet. Our defaults (4 GB VM,
  // 125 MB/s link) should land in that regime: tens of seconds total,
  // well-sub-second downtime.
  const auto r = simulate_precopy(idle_host_config());
  EXPECT_GT(r.duration_s, 10.0);
  EXPECT_LT(r.duration_s, 120.0);
  EXPECT_LT(r.downtime_ms, 1000.0);
}

TEST(Precopy, CopiesAtLeastVmMemory) {
  const auto r = simulate_precopy(idle_host_config());
  EXPECT_GE(r.data_copied_mb, idle_host_config().vm_memory_mb);
}

TEST(Precopy, DurationGrowsWithHostCpuLoadWhileConverged) {
  // While the pre-copy still converges, less headroom means a longer
  // migration. Past the divergence point the model aborts to stop-and-copy
  // (shorter copy, unacceptable downtime), so monotonicity only holds on
  // the converged prefix — exactly the "prolonged or failed migrations"
  // dichotomy of Section 1.2.
  MigrationConfig c = idle_host_config();
  double prev = 0.0;
  bool diverged = false;
  for (double load : {0.2, 0.5, 0.6, 0.7, 0.75, 0.85, 0.95}) {
    const auto r = simulate_precopy_at_load(c, load, 0.5);
    if (!r.converged) diverged = true;
    if (!diverged) {
      EXPECT_GE(r.duration_s, prev);
      prev = r.duration_s;
    } else {
      EXPECT_GT(r.downtime_ms, c.downtime_target_ms);
    }
  }
  EXPECT_TRUE(diverged);  // full sweep must hit the unreliable regime
  // Total time at ~zero headroom is still far beyond the idle-host time.
  const auto idle = simulate_precopy_at_load(c, 0.2, 0.5);
  const auto loaded = simulate_precopy_at_load(c, 0.97, 0.5);
  EXPECT_GT(loaded.duration_s, 5.0 * idle.duration_s);
}

TEST(Precopy, MemoryPressureSlowsCopy) {
  MigrationConfig c = idle_host_config();
  const auto normal = simulate_precopy_at_load(c, 0.5, 0.5);
  const auto thrashing = simulate_precopy_at_load(c, 0.5, 0.97);
  EXPECT_GT(thrashing.duration_s, normal.duration_s);
  EXPECT_LT(thrashing.effective_bandwidth_mbps,
            normal.effective_bandwidth_mbps);
}

TEST(Precopy, HighDirtyRateForcesStopAndCopy) {
  MigrationConfig c = idle_host_config();
  c.dirty_rate_mbps = c.link_bandwidth_mbps * 2.0;  // dirties faster than copy
  c.writable_working_set_mb = 2048.0;
  const auto r = simulate_precopy(c);
  EXPECT_FALSE(r.converged);
  EXPECT_GT(r.downtime_ms, c.downtime_target_ms);
}

TEST(Precopy, ZeroDirtyRateIsOneRound) {
  MigrationConfig c = idle_host_config();
  c.dirty_rate_mbps = 0.0;
  const auto r = simulate_precopy(c);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.rounds, 1);
  EXPECT_NEAR(r.data_copied_mb, c.vm_memory_mb, 1.0);
}

TEST(Precopy, BiggerVmTakesLonger) {
  MigrationConfig small = idle_host_config();
  MigrationConfig big = idle_host_config();
  big.vm_memory_mb = small.vm_memory_mb * 4;
  EXPECT_GT(simulate_precopy(big).duration_s,
            2.0 * simulate_precopy(small).duration_s);
}

TEST(Precopy, RoundCapRespected) {
  MigrationConfig c = idle_host_config();
  c.max_rounds = 3;
  c.dirty_rate_mbps = c.link_bandwidth_mbps * 0.95;  // converges very slowly
  c.writable_working_set_mb = c.vm_memory_mb;
  const auto r = simulate_precopy(c);
  EXPECT_LE(r.rounds, 3);
}

TEST(ReservationStudy, SweepCoversZeroToFull) {
  ReservationStudyConfig config;
  config.utilization_step = 0.1;
  const auto points = sweep_cpu_utilization(config);
  ASSERT_GE(points.size(), 10u);
  EXPECT_DOUBLE_EQ(points.front().host_cpu_utilization, 0.0);
  EXPECT_NEAR(points.back().host_cpu_utilization, 1.0, 1e-9);
}

TEST(ReservationStudy, ReliabilityIsMonotoneKnee) {
  ReservationStudyConfig config;
  const auto points = sweep_cpu_utilization(config);
  // Once unreliable, higher load never becomes reliable again.
  bool seen_unreliable = false;
  for (const auto& p : points) {
    if (!p.reliable) seen_unreliable = true;
    if (seen_unreliable) {
      EXPECT_FALSE(p.reliable);
    }
  }
  EXPECT_TRUE(seen_unreliable);  // full load must be unreliable
  EXPECT_TRUE(points.front().reliable);
}

TEST(ReservationStudy, KneeMatchesObservation4) {
  // The paper's rule: reliable below ~80% CPU; operators reserve 20-30%.
  ReservationStudyConfig config;
  config.utilization_step = 0.01;
  // Verma et al. [29]: do not load beyond ~75% host CPU; VMware recommends
  // reserving 20-30%.
  const double bound = max_reliable_cpu_utilization(config);
  EXPECT_GE(bound, 0.65);
  EXPECT_LE(bound, 0.85);
}

TEST(ReservationStudy, MemorySweepShowsKneeAbove85) {
  ReservationStudyConfig config;
  config.utilization_step = 0.01;
  const auto points = sweep_mem_utilization(config, /*cpu=*/0.5);
  // Below 85% committed memory the migration behaves identically.
  const auto& low = points[10];   // 10%
  const auto& mid = points[80];   // 80%
  EXPECT_DOUBLE_EQ(low.migration.duration_s, mid.migration.duration_s);
  // Above ~85% the copy degrades.
  const auto& high = points[97];
  EXPECT_GT(high.migration.duration_s, mid.migration.duration_s);
}

}  // namespace
}  // namespace vmcw
