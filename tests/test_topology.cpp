// Tests for the failure-domain topology layer: derived and scripted
// FailureDomainMaps, the DomainLookup bridge into core constraints, and
// the compilation of per-application spread rules.

#include "topology/failure_domains.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/host_pool.h"
#include "topology/spread.h"

namespace vmcw {
namespace {

ServerSpec spec_named(const char* model) {
  ServerSpec s;
  s.model = model;
  s.cpu_rpe2 = 100;
  s.memory_mb = 1000;
  s.idle_watts = 50;
  s.peak_watts = 100;
  return s;
}

VmWorkload vm_of_app(const std::string& app) {
  VmWorkload vm;
  vm.app = app;
  return vm;
}

TEST(FailureDomainMap, EmptyMapKnowsNothing) {
  const FailureDomainMap map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.rack_of(0), FailureDomainMap::kNoDomain);
  EXPECT_EQ(map.power_domain_of(7), FailureDomainMap::kNoDomain);
  EXPECT_EQ(map.rack_count(), 0u);
  EXPECT_TRUE(map.hosts_in(DomainKind::kRack, 0).empty());
}

TEST(FailureDomainMap, ScriptedAssignments) {
  FailureDomainMap map;
  map.assign(0, 2, 1);
  map.assign(5, 2, 1);
  map.assign(3, 0, 0);
  EXPECT_FALSE(map.empty());
  EXPECT_EQ(map.rack_of(0), 2);
  EXPECT_EQ(map.rack_of(5), 2);
  EXPECT_EQ(map.rack_of(3), 0);
  EXPECT_EQ(map.power_domain_of(5), 1);
  // Hosts never assigned have no domain, including gaps inside the table
  // and indices past it.
  EXPECT_EQ(map.rack_of(1), FailureDomainMap::kNoDomain);
  EXPECT_EQ(map.rack_of(100), FailureDomainMap::kNoDomain);
  EXPECT_EQ(map.rack_count(), 3u);       // ids 0..2
  EXPECT_EQ(map.power_domain_count(), 2u);
  const std::vector<std::size_t> rack2 = {0, 5};
  EXPECT_EQ(map.hosts_in(DomainKind::kRack, 2), rack2);
  EXPECT_TRUE(map.hosts_in(DomainKind::kRack, 1).empty());
}

TEST(FailureDomainMap, GenerateIsDeterministic) {
  const auto pool = HostPool::uniform(spec_named("uniform"));
  const TopologySpec spec;
  const auto a = FailureDomainMap::generate(pool, 64, spec, 17);
  const auto b = FailureDomainMap::generate(pool, 64, spec, 17);
  for (std::size_t h = 0; h < 64; ++h) {
    EXPECT_EQ(a.rack_of(h), b.rack_of(h));
    EXPECT_EQ(a.power_domain_of(h), b.power_domain_of(h));
  }
}

TEST(FailureDomainMap, SeedVariesThePhase) {
  // The keyed seed sets installation phase and PDU rotation; over a
  // handful of seeds at least two topologies must differ.
  const auto pool = HostPool::uniform(spec_named("uniform"));
  const TopologySpec spec;
  std::set<std::string> fingerprints;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto map = FailureDomainMap::generate(pool, 32, spec, seed);
    std::string fp;
    for (std::size_t h = 0; h < 32; ++h) {
      fp += std::to_string(map.rack_of(h)) + ":";
      fp += std::to_string(map.power_domain_of(h)) + ";";
    }
    fingerprints.insert(fp);
  }
  EXPECT_GT(fingerprints.size(), 1u);
}

TEST(FailureDomainMap, GeneratedMapsRespectTheShape) {
  const HostPool pool({{spec_named("old"), 13},
                       {spec_named("new"), HostClass::kUnlimited}});
  const TopologySpec spec{.hosts_per_rack = 4, .racks_per_power_domain = 3};
  const auto map = FailureDomainMap::generate(pool, 40, spec, 23);
  std::map<std::int32_t, std::vector<std::size_t>> rack_members;
  std::map<std::int32_t, std::set<std::int32_t>> power_racks;
  std::map<std::int32_t, std::set<std::string>> rack_models;
  for (std::size_t h = 0; h < 40; ++h) {
    const std::int32_t rack = map.rack_of(h);
    ASSERT_NE(rack, FailureDomainMap::kNoDomain) << h;
    rack_members[rack].push_back(h);
    power_racks[map.power_domain_of(h)].insert(rack);
    rack_models[rack].insert(pool.spec_of(h).model);
  }
  for (const auto& [rack, members] : rack_members) {
    // Racks hold at most hosts_per_rack contiguous hosts.
    EXPECT_LE(members.size(), spec.hosts_per_rack) << "rack " << rack;
    EXPECT_EQ(members.back() - members.front() + 1, members.size())
        << "rack " << rack << " not contiguous";
    // A rack never mixes hardware generations.
    EXPECT_EQ(rack_models[rack].size(), 1u) << "rack " << rack;
  }
  for (const auto& [pd, racks] : power_racks)
    EXPECT_LE(racks.size(), spec.racks_per_power_domain) << "pd " << pd;
  // Each rack feeds from exactly one power domain.
  std::map<std::int32_t, std::int32_t> rack_pd;
  for (std::size_t h = 0; h < 40; ++h) {
    const auto [it, inserted] =
        rack_pd.emplace(map.rack_of(h), map.power_domain_of(h));
    EXPECT_EQ(it->second, map.power_domain_of(h)) << "host " << h;
  }
}

TEST(FailureDomainMap, MaterializedSizeDoesNotChangeAnyHost) {
  // The extrapolation tail makes the assignment a pure function of
  // (pool, spec, seed): materializing 50 or 500 hosts must agree
  // everywhere, including far past the smaller table.
  const HostPool pool({{spec_named("old"), 10},
                       {spec_named("new"), HostClass::kUnlimited}});
  const TopologySpec spec{.hosts_per_rack = 6, .racks_per_power_domain = 2};
  const auto small = FailureDomainMap::generate(pool, 50, spec, 41);
  const auto big = FailureDomainMap::generate(pool, 500, spec, 41);
  for (std::size_t h = 0; h < 500; ++h) {
    EXPECT_EQ(small.rack_of(h), big.rack_of(h)) << h;
    EXPECT_EQ(small.power_domain_of(h), big.power_domain_of(h)) << h;
  }
}

TEST(FailureDomainMap, LookupMatchesDirectQueries) {
  const auto pool = HostPool::uniform(spec_named("uniform"));
  const TopologySpec spec{.hosts_per_rack = 5, .racks_per_power_domain = 3};
  const auto map = FailureDomainMap::generate(pool, 30, spec, 7);
  for (const DomainKind kind : {DomainKind::kRack, DomainKind::kPowerDomain}) {
    const DomainLookup lookup = map.lookup(kind);
    for (std::size_t h = 0; h < 200; ++h)
      EXPECT_EQ(lookup.domain_of(static_cast<std::int32_t>(h)),
                map.domain_of(h, kind))
          << to_string(kind) << " host " << h;
  }
}

TEST(FailureDomainMap, LookupHostOffsetShiftsTheFrame) {
  const auto pool = HostPool::uniform(spec_named("uniform"));
  const auto map = FailureDomainMap::generate(pool, 24, TopologySpec{}, 7);
  DomainLookup shifted = map.lookup(DomainKind::kRack);
  shifted.host_offset = 10;
  for (std::size_t h = 0; h < 100; ++h)
    EXPECT_EQ(shifted.domain_of(static_cast<std::int32_t>(h)),
              map.rack_of(h + 10))
        << h;
}

TEST(AppReplicaGroups, GroupsByLabelInFirstAppearanceOrder) {
  const std::vector<VmWorkload> vms = {vm_of_app("a"), vm_of_app("b"),
                                       vm_of_app("a"), vm_of_app(""),
                                       vm_of_app("b"), vm_of_app("a")};
  const auto groups = app_replica_groups(vms);
  const std::vector<std::vector<std::size_t>> expected = {
      {0, 2, 5}, {1, 4}, {3}};
  EXPECT_EQ(groups, expected);
}

TEST(SpreadAcrossDomains, CompilesCeilingCaps) {
  FailureDomainMap map;
  for (std::size_t h = 0; h < 12; ++h) map.assign(h, h / 3, 0);
  ConstraintSet cs;
  const std::vector<std::vector<std::size_t>> groups = {
      {0, 1, 2, 3, 4}, {5, 6}, {7}};
  spread_across_domains(cs, groups, map, DomainKind::kRack, 2);
  // Five replicas over k=2 domains -> cap ceil(5/2)=3; the pair gets cap
  // ceil(2/2)=1; the singleton compiles to nothing.
  ASSERT_EQ(cs.spread_rules().size(), 2u);
  EXPECT_EQ(cs.spread_rules()[0].vms, groups[0]);
  EXPECT_EQ(cs.spread_rules()[0].cap, 3u);
  EXPECT_EQ(cs.spread_rules()[1].vms, groups[1]);
  EXPECT_EQ(cs.spread_rules()[1].cap, 1u);
}

TEST(SpreadAcrossDomains, ClampsKToGroupAndKnownDomains) {
  // Bounded map with only 2 racks: k=10 must clamp to 2, not demand more
  // domains than exist.
  FailureDomainMap map;
  for (std::size_t h = 0; h < 8; ++h) map.assign(h, h / 4, 0);
  ConstraintSet cs;
  const std::vector<std::vector<std::size_t>> groups = {{0, 1, 2, 3}};
  spread_across_domains(cs, groups, map, DomainKind::kRack, 10);
  ASSERT_EQ(cs.spread_rules().size(), 1u);
  EXPECT_EQ(cs.spread_rules()[0].cap, 2u);  // ceil(4/2)
}

TEST(SpreadAcrossDomains, SkipsVacuousRules) {
  FailureDomainMap map;
  for (std::size_t h = 0; h < 8; ++h) map.assign(h, h / 4, 0);
  ConstraintSet cs;
  // A pair over k clamped to 2 known domains -> cap 1 < 2: real rule.
  // But with a single known domain the rule would be cap >= n: skipped.
  FailureDomainMap one_rack;
  for (std::size_t h = 0; h < 8; ++h) one_rack.assign(h, 0, 0);
  const std::vector<std::vector<std::size_t>> groups = {{0, 1}};
  spread_across_domains(cs, groups, one_rack, DomainKind::kRack, 4);
  EXPECT_TRUE(cs.spread_rules().empty());
  // k < 2 and empty maps are no-ops too.
  spread_across_domains(cs, groups, map, DomainKind::kRack, 1);
  spread_across_domains(cs, groups, FailureDomainMap{}, DomainKind::kRack, 2);
  EXPECT_TRUE(cs.spread_rules().empty());
}

TEST(SpreadAcrossDomains, CompiledRulesBindThroughTheConstraintSet) {
  // End to end: a 4-replica app over an 8-host / 4-rack map with k=4 must
  // land one replica per rack.
  const auto pool = HostPool::uniform(spec_named("uniform"));
  const TopologySpec spec{.hosts_per_rack = 2, .racks_per_power_domain = 2};
  const auto map = FailureDomainMap::generate(pool, 8, spec, 3);
  ConstraintSet cs;
  const std::vector<std::vector<std::size_t>> groups = {{0, 1, 2, 3}};
  spread_across_domains(cs, groups, map, DomainKind::kRack, 4);
  ASSERT_EQ(cs.spread_rules().size(), 1u);
  EXPECT_EQ(cs.spread_rules()[0].cap, 1u);

  Placement placement(4);
  placement.assign(0, 0);
  // Same rack as host 0 -> blocked for every other replica.
  const std::int32_t rack0 = map.rack_of(0);
  for (std::int32_t h = 0; h < 16; ++h) {
    const bool same_rack = map.rack_of(static_cast<std::size_t>(h)) == rack0;
    EXPECT_EQ(cs.allows(1, h, placement), !same_rack) << "host " << h;
  }
}

}  // namespace
}  // namespace vmcw
