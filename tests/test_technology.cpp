// Tests for the migration-technology variants (Section 7 / Observation 7).

#include "migration/technology.h"

#include <gtest/gtest.h>

namespace vmcw {
namespace {

TEST(MigrationTechnology, SourceCpuNeedOrdering) {
  EXPECT_GT(source_cpu_fraction(MigrationTechnology::kSourcePrecopy),
            source_cpu_fraction(MigrationTechnology::kTargetAssisted));
  EXPECT_GT(source_cpu_fraction(MigrationTechnology::kTargetAssisted),
            source_cpu_fraction(MigrationTechnology::kRdmaOffload));
}

TEST(MigrationTechnology, ApplyTechnologyConfiguresConfig) {
  const MigrationConfig base;
  const auto rdma = apply_technology(base, MigrationTechnology::kRdmaOffload);
  EXPECT_LT(rdma.migration_cpu_fraction, base.migration_cpu_fraction);
  EXPECT_GT(rdma.link_bandwidth_mbps, base.link_bandwidth_mbps);
  const auto precopy =
      apply_technology(base, MigrationTechnology::kSourcePrecopy);
  EXPECT_DOUBLE_EQ(precopy.link_bandwidth_mbps, base.link_bandwidth_mbps);
}

TEST(MigrationTechnology, BetterTechnologySupportsHigherBound) {
  // Observation 7's mechanism: cheaper source-side migration lets the
  // consolidator run hosts hotter.
  const double precopy =
      supported_utilization_bound(MigrationTechnology::kSourcePrecopy);
  const double assisted =
      supported_utilization_bound(MigrationTechnology::kTargetAssisted);
  const double rdma =
      supported_utilization_bound(MigrationTechnology::kRdmaOffload);
  EXPECT_LT(precopy, assisted);
  EXPECT_LE(assisted, rdma);
  // Classic pre-copy sits at the paper's 70-80% operating rule...
  EXPECT_GE(precopy, 0.65);
  EXPECT_LE(precopy, 0.85);
  // ...while RDMA frees nearly the whole host.
  EXPECT_GE(rdma, 0.90);
}

TEST(MigrationTechnology, MigrationsStillCompleteUnderRdma) {
  const auto config =
      apply_technology(MigrationConfig{}, MigrationTechnology::kRdmaOffload);
  const auto r = simulate_precopy_at_load(config, 0.9, 0.5);
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.duration_s, 120.0);
}

TEST(MigrationTechnology, Names) {
  EXPECT_STREQ(to_string(MigrationTechnology::kSourcePrecopy),
               "source pre-copy");
  EXPECT_STREQ(to_string(MigrationTechnology::kTargetAssisted),
               "target-assisted copy");
  EXPECT_STREQ(to_string(MigrationTechnology::kRdmaOffload), "RDMA offload");
}

}  // namespace
}  // namespace vmcw
