// Unit tests for the deterministic RNG (util/rng.h).

#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace vmcw {
namespace {

TEST(Splitmix64, AdvancesStateDeterministically) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);  // streams stay in sync
}

TEST(Hash64, StableAndSensitive) {
  EXPECT_EQ(hash64("server-1"), hash64("server-1"));
  EXPECT_NE(hash64("server-1"), hash64("server-2"));
  EXPECT_NE(hash64(""), hash64("a"));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(123), b(124);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // All-zero state would produce a constant 0 stream; seeding must avoid it.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 10; ++i) values.insert(r());
  EXPECT_GT(values.size(), 5u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndVariance) {
  Rng r(11);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(17);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.uniform_int(2, 9);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 9);
    saw_lo |= v == 2;
    saw_hi |= v == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMoments) {
  Rng r(23);
  double sum = 0, sum_sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng r(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, BernoulliProbability) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent() == child()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, KeyedForkIsOrderIndependent) {
  Rng a(43);
  Rng b(43);
  // Keyed forks do not advance the parent, so fork order cannot matter.
  Rng a1 = a.fork("x");
  Rng a2 = a.fork("y");
  Rng b2 = b.fork("y");
  Rng b1 = b.fork("x");
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(a1(), b1());
    EXPECT_EQ(a2(), b2());
  }
}

TEST(Rng, KeyedForksDifferByKey) {
  const Rng parent(47);
  Rng x = parent.fork("x");
  Rng y = parent.fork("y");
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (x() == y()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace vmcw
