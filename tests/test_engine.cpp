// Integration tests for the end-to-end consolidation engine
// (monitoring -> warehouse view -> plan -> execution check -> emulate).

#include "engine/engine.h"

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

ConsolidationEngine::Config small_config() {
  ConsolidationEngine::Config config;
  config.settings.history_hours = 120;
  config.settings.eval_hours = 48;
  config.settings.interval_hours = 2;
  return config;
}

Datacenter small_estate(int servers = 50) {
  return generate_datacenter(scaled_down(banking_spec(), servers, 168), 21);
}

TEST(Engine, RequiresObservation) {
  ConsolidationEngine engine(small_config());
  EXPECT_THROW(engine.planner_view(), std::logic_error);
  EXPECT_THROW(engine.recommend(Strategy::kDynamic), std::logic_error);
  EXPECT_THROW(engine.monitoring_fidelity(), std::logic_error);
}

TEST(Engine, PlannerViewTracksTruth) {
  ConsolidationEngine engine(small_config());
  const auto estate = small_estate();
  engine.observe(estate);
  EXPECT_EQ(engine.planner_view().servers.size(), estate.servers.size());
  const auto fidelity = engine.monitoring_fidelity();
  EXPECT_LT(fidelity.cpu_mean_abs_rel_error, 0.06);
  EXPECT_LT(fidelity.mem_mean_abs_rel_error, 0.03);
}

TEST(Engine, AllStrategiesProduceRecommendations) {
  ConsolidationEngine engine(small_config());
  engine.observe(small_estate());
  for (Strategy s : {Strategy::kStatic, Strategy::kSemiStatic,
                     Strategy::kStochastic, Strategy::kDynamic,
                     Strategy::kHybrid}) {
    const auto rec = engine.recommend(s);
    ASSERT_TRUE(rec.has_value()) << to_string(s);
    EXPECT_GT(rec->provisioned_hosts, 0u) << to_string(s);
    EXPECT_FALSE(rec->schedule.empty()) << to_string(s);
  }
}

TEST(Engine, StaticVariantsHaveSingleScheduleEntryAndNoMigrations) {
  ConsolidationEngine engine(small_config());
  engine.observe(small_estate());
  for (Strategy s : {Strategy::kStatic, Strategy::kSemiStatic,
                     Strategy::kStochastic}) {
    const auto rec = engine.recommend(s);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->schedule.size(), 1u);
    EXPECT_EQ(rec->total_migrations, 0u);
  }
}

TEST(Engine, DynamicRecommendationIsExecutable) {
  ConsolidationEngine engine(small_config());
  engine.observe(small_estate());
  const auto rec = engine.recommend(Strategy::kDynamic);
  ASSERT_TRUE(rec.has_value());
  ASSERT_TRUE(rec->execution.has_value());
  EXPECT_EQ(rec->execution->infeasible_intervals, 0u);
}

TEST(Engine, EvaluationReplaysGroundTruth) {
  ConsolidationEngine engine(small_config());
  engine.observe(small_estate());
  const auto stochastic = engine.recommend(Strategy::kStochastic);
  const auto dynamic = engine.recommend(Strategy::kDynamic);
  ASSERT_TRUE(stochastic && dynamic);
  const auto stochastic_report = engine.evaluate(*stochastic);
  const auto dynamic_report = engine.evaluate(*dynamic);
  EXPECT_GT(stochastic_report.energy_wh, 0.0);
  // The bursty Banking estate: dynamic saves energy over the fixed plan.
  EXPECT_LT(dynamic_report.energy_wh, stochastic_report.energy_wh);
}

TEST(Engine, PlanningOnWarehouseViewMatchesTruthScale) {
  // Plan on the warehouse view vs directly on the truth: host counts agree
  // within one host — monitoring is good enough to plan on (the paper's
  // operating premise).
  ConsolidationEngine engine(small_config());
  const auto estate = small_estate(80);
  engine.observe(estate);
  const auto rec = engine.recommend(Strategy::kSemiStatic);
  ASSERT_TRUE(rec.has_value());
  const auto truth_plan =
      plan_semi_static(to_vm_workloads(estate), small_config().settings);
  ASSERT_TRUE(truth_plan.has_value());
  EXPECT_NEAR(static_cast<double>(rec->provisioned_hosts),
              static_cast<double>(truth_plan->hosts_used), 1.0);
}

TEST(StrategyNames, Stable) {
  EXPECT_STREQ(to_string(Strategy::kStatic), "Static");
  EXPECT_STREQ(to_string(Strategy::kHybrid), "Hybrid");
}

}  // namespace
}  // namespace vmcw
