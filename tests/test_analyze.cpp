// Fixture-driven tests for tools/vmcw_analyze: for each whole-program rule
// family one fixture tree that must trigger it and one that must pass,
// plus the suppression/allowlist machinery, the stale-config audit, and
// thread-count determinism of the file walk. Like test_lint these pin the
// rules so the vmcw_analyze_src gate can't silently rot.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "analyze.h"

namespace {

using vmcw::analyze::Config;
using vmcw::analyze::Options;
using vmcw::analyze::Violation;

std::string fixture_root(const std::string& tree) {
  return std::string(VMCW_ANALYZE_FIXTURE_DIR) + "/" + tree;
}

std::vector<Violation> analyze_tree(const std::string& tree,
                                    const Config& config = Config{},
                                    Options options = Options{}) {
  std::string error;
  auto out = vmcw::analyze::analyze_paths(fixture_root(tree), {"."}, config,
                                          options, &error);
  EXPECT_TRUE(error.empty()) << error;
  return out;
}

/// A tree analyzed with no config: the stale audit would flag nothing
/// anyway (no entries), but disabling it keeps intent explicit.
std::vector<Violation> analyze_tree_no_audit(const std::string& tree) {
  Options options;
  options.audit_config = false;
  return analyze_tree(tree, Config{}, options);
}

std::vector<std::pair<std::string, std::size_t>> rule_lines(
    const std::vector<Violation>& violations) {
  std::vector<std::pair<std::string, std::size_t>> out;
  for (const Violation& v : violations) out.emplace_back(v.rule, v.line);
  std::sort(out.begin(), out.end());
  return out;
}

const Violation* find_rule(const std::vector<Violation>& violations,
                           const std::string& rule) {
  for (const Violation& v : violations)
    if (v.rule == rule) return &v;
  return nullptr;
}

using Expected = std::vector<std::pair<std::string, std::size_t>>;

// --- fork-key-collision -----------------------------------------------------

TEST(ForkKeys, CollisionsAndUntrackedRootTrigger) {
  const auto violations = analyze_tree_no_audit("fork_bad");
  const Expected expected = {{"fork-key-collision", 6},
                             {"fork-key-collision", 8},
                             {"fork-key-collision", 13},
                             {"fork-key-collision", 17}};
  EXPECT_EQ(rule_lines(violations), expected);
}

TEST(ForkKeys, DuplicateKeyDiagnosticNamesTheSiblingWitness) {
  const auto violations = analyze_tree_no_audit("fork_bad");
  ASSERT_FALSE(violations.empty());
  // The duplicate "alpha" at line 6 must point back at the line-5 sibling
  // and name the shared parent stream.
  const Violation& dup = violations.front();
  EXPECT_EQ(dup.line, 6u);
  EXPECT_NE(dup.message.find("\"alpha\""), std::string::npos) << dup.message;
  EXPECT_NE(dup.message.find("line 5"), std::string::npos) << dup.message;
  EXPECT_NE(dup.message.find("'root'"), std::string::npos) << dup.message;
}

TEST(ForkKeys, PrefixOverlapAndLiteralInsidePrefixAreCollisions) {
  const auto violations = analyze_tree_no_audit("fork_bad");
  bool saw_literal_in_prefix = false;
  bool saw_prefix_overlap = false;
  for (const Violation& v : violations) {
    if (v.line == 8) {
      saw_literal_in_prefix =
          v.message.find("dynamic-suffix namespace \"host-") !=
          std::string::npos;
    }
    if (v.line == 13) {
      saw_prefix_overlap =
          v.message.find("overlapping dynamic-suffix") != std::string::npos;
    }
  }
  EXPECT_TRUE(saw_literal_in_prefix);
  EXPECT_TRUE(saw_prefix_overlap);
}

TEST(ForkKeys, UntrackedRootNamesTheReceiver) {
  const auto violations = analyze_tree_no_audit("fork_bad");
  const Violation* untracked = nullptr;
  for (const Violation& v : violations)
    if (v.line == 17) untracked = &v;
  ASSERT_NE(untracked, nullptr);
  EXPECT_NE(untracked->message.find("'mystery'"), std::string::npos);
}

TEST(ForkKeys, DistinctKeysAndPairedHeaderMembersPass) {
  EXPECT_TRUE(analyze_tree_no_audit("fork_ok").empty());
}

// --- lock-order-cycle -------------------------------------------------------

TEST(LockOrder, CrossFileCycleTriggersWithOrderedWitnessPath) {
  const auto violations = analyze_tree_no_audit("lock_bad");
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = violations.front();
  EXPECT_EQ(v.rule, "lock-order-cycle");
  // The witness path walks the cycle in order with one file:line per edge:
  // io_mu_ -> map_mu_ through append(), map_mu_ -> io_mu_ through publish().
  EXPECT_NE(v.message.find("Journal::io_mu_ -> Registry::map_mu_ "
                           "(svc/journal.cpp:11)"),
            std::string::npos)
      << v.message;
  EXPECT_NE(v.message.find("-> Journal::io_mu_ (svc/registry.cpp:10)"),
            std::string::npos)
      << v.message;
}

TEST(LockOrder, ConsistentOrderWithAnnotationsPasses) {
  EXPECT_TRUE(analyze_tree_no_audit("lock_ok").empty());
}

// --- layering ---------------------------------------------------------------

TEST(Layering, LowerTierIncludingHigherTierTriggers) {
  const auto violations = analyze_tree_no_audit("layer_bad");
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = violations.front();
  EXPECT_EQ(v.rule, "layering");
  EXPECT_EQ(v.file, "util/helper.h");
  EXPECT_EQ(v.line, 3u);
  EXPECT_NE(v.message.find("back-edge"), std::string::npos);
  EXPECT_NE(v.message.find("'engine'"), std::string::npos);
}

TEST(Layering, IncludeCycleTriggersWithWitnessPath) {
  const auto violations = analyze_tree_no_audit("layer_cycle");
  ASSERT_EQ(violations.size(), 1u);
  const Violation& v = violations.front();
  EXPECT_EQ(v.rule, "layering");
  EXPECT_NE(v.message.find("include cycle"), std::string::npos);
  EXPECT_NE(
      v.message.find("cyc/a.h -> cyc/b.h (cyc/a.h:3) -> cyc/a.h (cyc/b.h:3)"),
      std::string::npos)
      << v.message;
}

TEST(Layering, ForwardAndSameTierIncludesPass) {
  EXPECT_TRUE(analyze_tree_no_audit("layer_ok").empty());
}

// --- durable-write ----------------------------------------------------------

TEST(DurableWrite, RawWritesTrigger) {
  const auto violations = analyze_tree_no_audit("write_bad");
  const Expected expected = {{"durable-write", 8},
                             {"durable-write", 9},
                             {"durable-write", 10},
                             {"durable-write", 11}};
  EXPECT_EQ(rule_lines(violations), expected);
}

TEST(DurableWrite, AtomicWriterAndQualifiedOpenPass) {
  EXPECT_TRUE(analyze_tree_no_audit("write_ok").empty());
}

// --- suppressions and the allowlist -----------------------------------------

TEST(Suppressions, DeclaredAllowsSilenceTheTreeAndStayLive) {
  Config config;
  std::string error;
  ASSERT_TRUE(Config::parse(
      "allow service/snapshot.cpp durable-write -- sanctioned stand-in\n"
      "allow-inline service/pipe.cpp durable-write -- self-pipe wake\n",
      config, &error))
      << error;
  // Audit stays ON: both entries are live, so nothing is stale either.
  EXPECT_TRUE(analyze_tree("write_allow", config).empty());
}

TEST(Suppressions, UndeclaredSuppressionAndBareWriteTriggerWithoutConfig) {
  const auto violations = analyze_tree_no_audit("write_allow");
  const Expected expected = {{"durable-write", 7},
                             {"undeclared-suppression", 6}};
  EXPECT_EQ(rule_lines(violations), expected);
}

TEST(Suppressions, UnusedSuppressionTriggers) {
  const auto violations = analyze_tree_no_audit("suppress_unused");
  const Expected expected = {{"unused-suppression", 5}};
  EXPECT_EQ(rule_lines(violations), expected);
}

// --- stale-config -----------------------------------------------------------

TEST(StaleConfig, EntriesThatAllowNothingTrigger) {
  Config config;
  std::string error;
  ASSERT_TRUE(Config::parse(
      "allow nosuch/file.cpp durable-write -- file is long gone\n"
      "allow core/good.cpp durable-write -- nothing raw left here\n"
      "allow-inline core/good.cpp durable-write -- no suppression lives\n",
      config, &error))
      << error;
  Options options;
  options.config_name = "stale.conf";
  const auto violations = analyze_tree("write_ok", config, options);
  const Expected expected = {
      {"stale-config", 1}, {"stale-config", 2}, {"stale-config", 3}};
  EXPECT_EQ(rule_lines(violations), expected);
  for (const Violation& v : violations) EXPECT_EQ(v.file, "stale.conf");
  EXPECT_NE(violations[0].message.find("matches no analyzed source file"),
            std::string::npos);
  EXPECT_NE(violations[1].message.find("matches no remaining raw violation"),
            std::string::npos);
  EXPECT_NE(violations[2].message.find("backs no live inline suppression"),
            std::string::npos);
}

// --- determinism ------------------------------------------------------------

TEST(Determinism, WholeCorpusOutputIsIdenticalAtOneTwoEightThreads) {
  std::vector<std::vector<Violation>> runs;
  for (const unsigned threads : {1u, 2u, 8u}) {
    Options options;
    options.threads = threads;
    options.audit_config = false;
    std::string error;
    runs.push_back(vmcw::analyze::analyze_paths(
        std::string(VMCW_ANALYZE_FIXTURE_DIR), {"."}, Config{}, options,
        &error));
    ASSERT_TRUE(error.empty()) << error;
  }
  ASSERT_FALSE(runs[0].empty());  // trigger fixtures guarantee output
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].file, runs[0][i].file);
      EXPECT_EQ(runs[r][i].line, runs[0][i].line);
      EXPECT_EQ(runs[r][i].rule, runs[0][i].rule);
      EXPECT_EQ(runs[r][i].message, runs[0][i].message);
    }
  }
}

TEST(Rules, AnalyzerRuleNamesAreRegisteredWithTheSharedConfig) {
  const auto& shared = vmcw::check::known_rule_names();
  for (const std::string& rule : vmcw::analyze::rule_names())
    EXPECT_NE(std::find(shared.begin(), shared.end(), rule), shared.end())
        << rule;
}

TEST(Rules, LayerOrderMatchesDesign) {
  using vmcw::analyze::module_tier;
  EXPECT_EQ(module_tier("util"), 0);
  EXPECT_EQ(module_tier("runtime"), 1);
  EXPECT_EQ(module_tier("core"), 2);
  EXPECT_EQ(module_tier("trace"), 2);
  EXPECT_EQ(module_tier("chaos"), 3);
  EXPECT_EQ(module_tier("engine"), 4);
  EXPECT_EQ(module_tier("sweep"), 4);
  EXPECT_EQ(module_tier("service"), 5);
  EXPECT_EQ(module_tier("report"), 5);
  EXPECT_EQ(module_tier("fixtures"), -1);  // unknown dirs are tier-exempt
}

}  // namespace
