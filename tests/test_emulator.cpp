// Unit + integration tests for the trace-replay emulator, including the
// paper's emulator-accuracy experiment (Section 5.2) as a consistency test.

#include "core/emulator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "hardware/power_model.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_fleet;
using testing::small_settings;

/// Two constant VMs on one host for 48 hours.
struct TinyScenario {
  std::vector<VmWorkload> vms;
  std::vector<Placement> schedule;
  StudySettings settings;

  TinyScenario() {
    settings = small_settings();
    vms.push_back(constant_vm("a", 4096.0, 10240.0, 168));
    vms.push_back(constant_vm("b", 6144.0, 20480.0, 168));
    Placement p(2);
    p.assign(0, 0);
    p.assign(1, 0);
    schedule.push_back(p);
  }
};

TEST(Emulator, UtilizationOfKnownScenario) {
  TinyScenario s;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  ASSERT_EQ(report.host_avg_cpu_util.size(), 1u);
  const double expected = (4096.0 + 6144.0) / s.settings.target.cpu_rpe2;
  EXPECT_NEAR(report.host_avg_cpu_util[0], expected, 1e-9);
  EXPECT_NEAR(report.host_peak_cpu_util[0], expected, 1e-9);
}

TEST(Emulator, EnergyOfKnownScenario) {
  TinyScenario s;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  const PowerModel power(s.settings.target);
  const double util = (4096.0 + 6144.0) / s.settings.target.cpu_rpe2;
  EXPECT_NEAR(report.energy_wh,
              power.watts(util) * static_cast<double>(s.settings.eval_hours),
              1e-6);
}

TEST(Emulator, ActiveHostAccounting) {
  TinyScenario s;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  EXPECT_EQ(report.provisioned_hosts, 1u);
  EXPECT_EQ(report.intervals, s.settings.intervals());
  ASSERT_EQ(report.active_hosts_per_interval.size(), report.intervals);
  for (auto active : report.active_hosts_per_interval) EXPECT_EQ(active, 1u);
}

TEST(Emulator, NoContentionBelowCapacity) {
  TinyScenario s;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  EXPECT_EQ(report.hours_with_contention, 0u);
  EXPECT_TRUE(report.cpu_contention_samples.empty());
  EXPECT_TRUE(report.mem_contention_samples.empty());
  EXPECT_DOUBLE_EQ(report.contention_time_fraction(), 0.0);
}

TEST(Emulator, CpuContentionMeasured) {
  TinyScenario s;
  // Third VM pushes CPU demand to 1.25x capacity.
  s.vms.push_back(constant_vm("c", 0.75 * s.settings.target.cpu_rpe2 + 4096.0,
                              1024.0, 168));
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 0);
  s.schedule[0] = p;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  EXPECT_EQ(report.hours_with_contention, s.settings.eval_hours);
  ASSERT_EQ(report.cpu_contention_samples.size(), s.settings.eval_hours);
  const double total =
      (4096.0 + 6144.0 + 0.75 * s.settings.target.cpu_rpe2 + 4096.0);
  EXPECT_NEAR(report.cpu_contention_samples[0],
              total / s.settings.target.cpu_rpe2 - 1.0, 1e-9);
  EXPECT_GT(report.host_peak_cpu_util[0], 1.0);  // uncapped, as in Fig 11
}

TEST(Emulator, MemContentionMeasured) {
  TinyScenario s;
  s.vms.push_back(constant_vm("c", 100.0,
                              s.settings.target.memory_mb, 168));
  Placement p(3);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 0);
  s.schedule[0] = p;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  EXPECT_FALSE(report.mem_contention_samples.empty());
  EXPECT_EQ(report.hours_with_contention, s.settings.eval_hours);
}

TEST(Emulator, PowerOffVersusIdleHosts) {
  TinyScenario s;
  // VM b parked on host 1 only during the first interval; afterwards both
  // VMs on host 0, host 1 empty.
  Placement first(2);
  first.assign(0, 0);
  first.assign(1, 1);
  Placement rest(2);
  rest.assign(0, 0);
  rest.assign(1, 0);
  s.schedule.assign(s.settings.intervals(), rest);
  s.schedule[0] = first;

  const auto off = emulate(s.vms, s.schedule, s.settings, true);
  const auto idle = emulate(s.vms, s.schedule, s.settings, false);
  const PowerModel power(s.settings.target);
  const double idle_hours =
      static_cast<double>(s.settings.eval_hours - s.settings.interval_hours);
  EXPECT_NEAR(idle.energy_wh - off.energy_wh, power.watts(0.0) * idle_hours,
              1e-6);
}

TEST(Emulator, DynamicScheduleChangesHostCounts) {
  TinyScenario s;
  Placement spread(2);
  spread.assign(0, 0);
  spread.assign(1, 1);
  Placement packed(2);
  packed.assign(0, 0);
  packed.assign(1, 0);
  s.schedule.assign(s.settings.intervals(), packed);
  s.schedule[3] = spread;
  const auto report = emulate(s.vms, s.schedule, s.settings, true);
  EXPECT_EQ(report.provisioned_hosts, 2u);
  EXPECT_EQ(report.active_hosts_per_interval[3], 2u);
  EXPECT_EQ(report.active_hosts_per_interval[2], 1u);
}

TEST(Emulator, EmptyScheduleIsSafe) {
  TinyScenario s;
  const auto report = emulate(s.vms, {}, s.settings, false);
  EXPECT_EQ(report.provisioned_hosts, 0u);
  EXPECT_DOUBLE_EQ(report.energy_wh, 0.0);
}

TEST(Emulator, SlaExposureCountsVmsOnContendedHosts) {
  TinyScenario s;
  // Host 0 contended all the time (third VM overloads it); host 1 clean.
  s.vms.push_back(constant_vm("c", 0.75 * s.settings.target.cpu_rpe2 + 4096.0,
                              1024.0, 168));
  s.vms.push_back(constant_vm("d", 100.0, 1024.0, 168));
  Placement p(4);
  p.assign(0, 0);
  p.assign(1, 0);
  p.assign(2, 0);
  p.assign(3, 1);  // on the clean host
  s.schedule[0] = p;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  ASSERT_EQ(report.vm_contention_hours.size(), 4u);
  EXPECT_EQ(report.vm_contention_hours[0], s.settings.eval_hours);
  EXPECT_EQ(report.vm_contention_hours[1], s.settings.eval_hours);
  EXPECT_EQ(report.vm_contention_hours[2], s.settings.eval_hours);
  EXPECT_EQ(report.vm_contention_hours[3], 0u);  // clean host unaffected
  EXPECT_EQ(report.total_vm_contention_hours, 3 * s.settings.eval_hours);
}

TEST(Emulator, NoContentionMeansNoSlaExposure) {
  TinyScenario s;
  const auto report = emulate(s.vms, s.schedule, s.settings, false);
  EXPECT_EQ(report.total_vm_contention_hours, 0u);
  for (auto hours : report.vm_contention_hours) EXPECT_EQ(hours, 0u);
}

// The paper validated its emulator against RUBiS/daxpy replay with a 99th
// percentile error below 5%. Our equivalent consistency check: replaying
// VMs one-per-host must reproduce each VM's own demand trace as host
// utilization, exactly.
TEST(Emulator, ReplayAccuracyOnePerHost) {
  const auto vms = small_fleet(30);
  const auto settings = small_settings();
  Placement p(vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i)
    p.assign(i, static_cast<std::int32_t>(i));
  const std::vector<Placement> schedule{p};
  const auto report = emulate(vms, schedule, settings, false);
  ASSERT_EQ(report.host_peak_cpu_util.size(), vms.size());
  for (std::size_t i = 0; i < vms.size(); ++i) {
    const auto eval = vms[i].cpu_rpe2.slice(settings.eval_begin(),
                                            settings.eval_hours);
    EXPECT_NEAR(report.host_peak_cpu_util[i],
                peak(eval) / settings.target.cpu_rpe2, 1e-9);
    EXPECT_NEAR(report.host_avg_cpu_util[i],
                mean(eval) / settings.target.cpu_rpe2, 1e-9);
  }
}

}  // namespace
}  // namespace vmcw
