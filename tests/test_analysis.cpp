// Unit tests for burstiness metrics, resource ratio, and fleet summaries.

#include <gtest/gtest.h>

#include "analysis/burstiness.h"
#include "analysis/resource_ratio.h"
#include "analysis/workload_report.h"
#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

/// A hand-built two-server data center with exactly known series.
Datacenter handmade_dc() {
  Datacenter dc;
  dc.name = "T";
  dc.industry = "Test";

  ServerSpec spec;
  spec.model = "unit";
  spec.cpu_rpe2 = 1000.0;
  spec.memory_mb = 10240.0;  // 10 GB

  ServerTrace flat;
  flat.id = "flat";
  flat.spec = spec;
  flat.cpu_util = TimeSeries(std::vector<double>(8, 0.5));
  flat.mem_mb = TimeSeries(std::vector<double>(8, 1024.0));

  ServerTrace spiky;
  spiky.id = "spiky";
  spiky.spec = spec;
  spiky.cpu_util = TimeSeries({0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.8});
  spiky.mem_mb = TimeSeries({512, 512, 512, 512, 512, 512, 512, 1024});

  dc.servers = {flat, spiky};
  return dc;
}

TEST(Burstiness, FlatServerHasUnitP2AAndZeroCov) {
  const auto result = burstiness(handmade_dc(), Resource::kCpu, 1);
  ASSERT_EQ(result.peak_to_average.size(), 2u);
  EXPECT_DOUBLE_EQ(result.peak_to_average[0], 1.0);
  EXPECT_DOUBLE_EQ(result.cov[0], 0.0);
}

TEST(Burstiness, SpikyServerKnownValues) {
  const auto result = burstiness(handmade_dc(), Resource::kCpu, 1);
  // mean = (7*0.1 + 0.8)/8 = 0.1875; peak = 0.8
  EXPECT_NEAR(result.peak_to_average[1], 0.8 / 0.1875, 1e-9);
  EXPECT_GT(result.cov[1], 1.0);  // single large spike is heavy-tailed
}

TEST(Burstiness, LargerWindowsSmoothP2A) {
  const auto dc = handmade_dc();
  const auto w1 = burstiness(dc, Resource::kCpu, 1);
  const auto w4 = burstiness(dc, Resource::kCpu, 4);
  // Averaging the spike into a 4h window must reduce the ratio.
  EXPECT_LT(w4.peak_to_average[1], w1.peak_to_average[1]);
}

TEST(Burstiness, MemoryUsesMemorySeries) {
  const auto result = burstiness(handmade_dc(), Resource::kMemory, 1);
  EXPECT_DOUBLE_EQ(result.peak_to_average[0], 1.0);
  EXPECT_NEAR(result.peak_to_average[1], 1024.0 / 576.0, 1e-9);
}

TEST(Burstiness, AnalysisWindowRestrictsToTail) {
  const auto dc = handmade_dc();
  // Last 4 hours of the spiky server: {0.1,0.1,0.1,0.8}.
  const auto result = burstiness(dc, Resource::kCpu, 1, 4);
  EXPECT_NEAR(result.peak_to_average[1], 0.8 / 0.275, 1e-9);
}

TEST(Burstiness, HeavyTailedFraction) {
  const auto result = burstiness(handmade_dc(), Resource::kCpu, 1);
  EXPECT_DOUBLE_EQ(heavy_tailed_fraction(result), 0.5);
  EXPECT_DOUBLE_EQ(heavy_tailed_fraction(BurstinessResult{}), 0.0);
}

TEST(Burstiness, CdfHelpers) {
  const auto result = burstiness(handmade_dc(), Resource::kCpu, 1);
  EXPECT_EQ(p2a_cdf(result).size(), 2u);
  EXPECT_EQ(cov_cdf(result).size(), 2u);
  EXPECT_DOUBLE_EQ(p2a_cdf(result).min(), 1.0);
}

TEST(ResourceRatio, KnownValues) {
  const auto ratios = resource_ratio_series(handmade_dc(), 1);
  ASSERT_EQ(ratios.size(), 8u);
  // Hour 0: cpu = 0.5*1000 + 0.1*1000 = 600 RPE2;
  //         mem = (1024 + 512)/1024 = 1.5 GB  => ratio 400.
  EXPECT_NEAR(ratios[0], 600.0 / 1.5, 1e-9);
  // Hour 7: cpu = 0.5*1000 + 0.8*1000 = 1300; mem = 2 GB => 650.
  EXPECT_NEAR(ratios[7], 1300.0 / 2.0, 1e-9);
}

TEST(ResourceRatio, WindowAveraging) {
  const auto ratios = resource_ratio_series(handmade_dc(), 8);
  ASSERT_EQ(ratios.size(), 1u);
  // Mean cpu = (7*600 + 1300)/8 = 687.5; mean mem GB = (7*1.5 + 2)/8.
  EXPECT_NEAR(ratios[0], 687.5 / (12.5 / 8.0), 1e-9);
}

TEST(ResourceRatio, MemoryConstrainedFraction) {
  // All hourly ratios are 400 except hour 7 at 650; threshold between them
  // splits 7/8 vs 1/8.
  EXPECT_NEAR(memory_constrained_fraction(handmade_dc(), 1, 0, 500.0),
              7.0 / 8.0, 1e-9);
  EXPECT_DOUBLE_EQ(memory_constrained_fraction(handmade_dc(), 1, 0, 100.0),
                   0.0);
  EXPECT_DOUBLE_EQ(memory_constrained_fraction(handmade_dc(), 1, 0, 10000.0),
                   1.0);
}

TEST(ResourceRatio, AirlinesAlwaysMemoryBound) {
  // Observation 3 for workload B at reduced scale.
  const auto dc =
      generate_datacenter(scaled_down(airlines_spec(), 120, 336), kStudySeed);
  EXPECT_GT(memory_constrained_fraction(dc, 2), 0.99);
}

TEST(ResourceRatio, BankingOftenCpuBound) {
  const auto dc =
      generate_datacenter(scaled_down(banking_spec(), 200, kHoursPerMonth),
                          kStudySeed);
  const double mem_bound = memory_constrained_fraction(dc, 2, 336);
  EXPECT_LT(mem_bound, 0.6);  // CPU-intensive for a large share of intervals
  EXPECT_GT(mem_bound, 0.05);
}

TEST(WorkloadReport, SummaryFields) {
  const auto summary = summarize_workload(handmade_dc());
  EXPECT_EQ(summary.name, "T");
  EXPECT_EQ(summary.servers, 2u);
  EXPECT_NEAR(summary.avg_cpu_util, (0.5 + 0.1875) / 2.0, 1e-9);
  EXPECT_NEAR(summary.total_rpe2_capacity, 2000.0, 1e-9);
  EXPECT_NEAR(summary.total_memory_gb, 20.0, 1e-9);
}

TEST(WorkloadReport, TableContainsRows) {
  const auto summary = summarize_workload(handmade_dc());
  const std::vector<WorkloadSummary> rows{summary};
  const std::string table = format_table2(rows);
  EXPECT_NE(table.find("Test"), std::string::npos);
  EXPECT_NE(table.find("2"), std::string::npos);
}

TEST(Resource, ToString) {
  EXPECT_STREQ(to_string(Resource::kCpu), "cpu");
  EXPECT_STREQ(to_string(Resource::kMemory), "memory");
}

}  // namespace
}  // namespace vmcw
