// Unit tests for the PCP substrate: body/tail, peak signatures, clustering.

#include "analysis/correlation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "trace/generator.h"
#include "trace/patterns.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

TEST(BodyTail, KnownDecomposition) {
  const std::vector<double> demand{1, 1, 1, 1, 1, 1, 1, 1, 1, 10};
  const auto bt = body_tail(demand, 90.0);
  // Linear-interpolation 90th percentile: rank 8.1 between 1 and 10 = 1.9.
  EXPECT_NEAR(bt.body, 1.9, 1e-9);
  EXPECT_NEAR(bt.body + bt.tail, 10.0, 1e-9);
}

TEST(BodyTail, MaxPercentileHasZeroTail) {
  const std::vector<double> demand{3, 7, 5};
  const auto bt = body_tail(demand, 100.0);
  EXPECT_DOUBLE_EQ(bt.body, 7.0);
  EXPECT_DOUBLE_EQ(bt.tail, 0.0);
}

TEST(BodyTail, EmptyInput) {
  const auto bt = body_tail({});
  EXPECT_DOUBLE_EQ(bt.body, 0.0);
  EXPECT_DOUBLE_EQ(bt.tail, 0.0);
}

TEST(PeakSignature, MarksBucketsAboveBody) {
  // 2 days; exceed body only during hours 8-11 each day.
  std::vector<double> v(48, 1.0);
  for (std::size_t d = 0; d < 2; ++d)
    for (std::size_t h = 8; h < 12; ++h) v[d * 24 + h] = 5.0;
  const auto sig = peak_signature(TimeSeries(v), /*body=*/2.0,
                                  /*bucket_hours=*/4);
  ASSERT_EQ(sig.size(), 6u);
  EXPECT_DOUBLE_EQ(sig[2], 1.0);  // bucket for hours 8-11
  for (std::size_t b : {0u, 1u, 3u, 4u, 5u}) EXPECT_DOUBLE_EQ(sig[b], 0.0);
}

TEST(PeakSignature, FractionalOccupancy) {
  // Exceeds body in hours 8-11 on day 1 only, of 2 days.
  std::vector<double> v(48, 1.0);
  for (std::size_t h = 8; h < 12; ++h) v[h] = 5.0;
  const auto sig = peak_signature(TimeSeries(v), 2.0, 4);
  EXPECT_DOUBLE_EQ(sig[2], 0.5);
}

TEST(PeakSignature, BucketSizeClamped) {
  const auto sig = peak_signature(TimeSeries(std::vector<double>(24, 1.0)),
                                  0.5, 100);
  EXPECT_EQ(sig.size(), 1u);
  EXPECT_DOUBLE_EQ(sig[0], 1.0);  // everything above body 0.5
}

TEST(SignatureSimilarity, CosineProperties) {
  const std::vector<double> a{1, 0, 0};
  const std::vector<double> b{0, 1, 0};
  const std::vector<double> c{2, 0, 0};
  EXPECT_DOUBLE_EQ(signature_similarity(a, b), 0.0);
  EXPECT_NEAR(signature_similarity(a, c), 1.0, 1e-12);
  const std::vector<double> empty;
  const std::vector<double> zeros{0, 0, 0};
  EXPECT_DOUBLE_EQ(signature_similarity(a, empty), 0.0);
  EXPECT_DOUBLE_EQ(signature_similarity(zeros, a), 0.0);
}

TEST(ClusterSignatures, GroupsSimilarSeparatesOrthogonal) {
  const std::vector<std::vector<double>> sigs{
      {1, 0, 0, 0}, {0.9, 0.1, 0, 0},  // morning peakers
      {0, 0, 1, 0}, {0, 0, 0.8, 0.2},  // afternoon peakers
  };
  const auto clusters = cluster_signatures(sigs, 0.6);
  ASSERT_EQ(clusters.size(), 4u);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[2], clusters[3]);
  EXPECT_NE(clusters[0], clusters[2]);
}

TEST(ClusterSignatures, ThresholdOneSeparatesAll) {
  const std::vector<std::vector<double>> sigs{
      {1, 0}, {0.9, 0.1}, {0.8, 0.2}};
  const auto clusters = cluster_signatures(sigs, 1.01);
  EXPECT_NE(clusters[0], clusters[1]);
  EXPECT_NE(clusters[1], clusters[2]);
}

TEST(ClusterSignatures, ThresholdZeroMergesAll) {
  const std::vector<std::vector<double>> sigs{{1, 0}, {0, 1}, {0.5, 0.5}};
  const auto clusters = cluster_signatures(sigs, -0.1);
  EXPECT_EQ(clusters[0], clusters[1]);
  EXPECT_EQ(clusters[1], clusters[2]);
}

TEST(ClusterSignatures, DenseIdsFromZero) {
  const std::vector<std::vector<double>> sigs{{1, 0}, {0, 1}, {1, 0}};
  const auto clusters = cluster_signatures(sigs, 0.6);
  EXPECT_EQ(clusters[0], 0u);
  EXPECT_EQ(clusters[1], 1u);
  EXPECT_EQ(clusters[2], 0u);
}

TEST(CorrelationStability, StationaryPairsShowNoDrift) {
  // Periodic series whose relationship is identical in both halves.
  std::vector<std::vector<double>> series(3);
  for (std::size_t t = 0; t < 200; ++t) {
    const double a = std::sin(t * 0.3);
    series[0].push_back(a);
    series[1].push_back(a * 2.0 + 1.0);   // perfectly correlated
    series[2].push_back(-a);              // perfectly anti-correlated
  }
  const auto s = correlation_stability(series);
  EXPECT_EQ(s.pairs, 3u);
  EXPECT_NEAR(s.mean_abs_drift, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.sign_flip_fraction, 0.0);
}

TEST(CorrelationStability, RegimeChangeDetected) {
  // Two series correlated in the first half, anti-correlated in the second.
  std::vector<std::vector<double>> series(2);
  for (std::size_t t = 0; t < 100; ++t) {
    const double a = std::sin(t * 0.5);
    series[0].push_back(a);
    series[1].push_back(t < 50 ? a : -a);
  }
  const auto s = correlation_stability(series);
  EXPECT_GT(s.mean_abs_drift, 1.5);  // +1 -> -1 is a drift of 2
  EXPECT_DOUBLE_EQ(s.sign_flip_fraction, 1.0);
}

TEST(CorrelationStability, DegenerateInputs) {
  EXPECT_EQ(correlation_stability({}).pairs, 0u);
  const std::vector<std::vector<double>> one{{1, 2, 3}};
  EXPECT_EQ(correlation_stability(one).pairs, 0u);
}

TEST(CorrelationStability, GeneratedEstateIsStable) {
  // Observation 5's premise on our own synthetic Banking estate.
  const auto dc = generate_datacenter(
      scaled_down(banking_spec(), 40, kHoursPerMonth), kStudySeed);
  std::vector<std::vector<double>> series;
  for (const auto& s : dc.servers)
    series.push_back(s.cpu_util.window_reduce(2, WindowReducer::kMean));
  const auto stability = correlation_stability(series);
  EXPECT_LT(stability.mean_abs_drift, 0.2);
  EXPECT_LT(stability.sign_flip_fraction, 0.05);
}

TEST(CorrelationMatrix, SymmetricWithUnitDiagonal) {
  const std::vector<std::vector<double>> series{
      {1, 2, 3, 4}, {2, 4, 6, 8}, {4, 3, 2, 1}};
  const auto m = correlation_matrix(series);
  ASSERT_EQ(m.size(), 9u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(m[i * 3 + i], 1.0);
    for (std::size_t j = 0; j < 3; ++j)
      EXPECT_DOUBLE_EQ(m[i * 3 + j], m[j * 3 + i]);
  }
  EXPECT_NEAR(m[0 * 3 + 1], 1.0, 1e-12);
  EXPECT_NEAR(m[0 * 3 + 2], -1.0, 1e-12);
}

}  // namespace
}  // namespace vmcw
