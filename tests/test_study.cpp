// Integration tests for the Section-5 study driver.

#include "core/study.h"

#include <gtest/gtest.h>

#include "test_helpers.h"

namespace vmcw {
namespace {

using testing::small_settings;

Datacenter small_dc(int servers = 80) {
  return generate_datacenter(scaled_down(banking_spec(), servers, 168), 42);
}

TEST(Study, RunsAllThreeAlgorithms) {
  const auto result = run_study(small_dc(), small_settings());
  ASSERT_EQ(result.results.size(), 3u);
  EXPECT_NO_THROW(result.get(Algorithm::kSemiStatic));
  EXPECT_NO_THROW(result.get(Algorithm::kStochastic));
  EXPECT_NO_THROW(result.get(Algorithm::kDynamic));
  EXPECT_EQ(result.workload, "Banking");
}

TEST(Study, VanillaNormalizesToOne) {
  const auto result = run_study(small_dc(), small_settings());
  EXPECT_DOUBLE_EQ(result.normalized_space_cost(Algorithm::kSemiStatic), 1.0);
  EXPECT_DOUBLE_EQ(result.normalized_power_cost(Algorithm::kSemiStatic), 1.0);
}

TEST(Study, CostsArePositiveAndConsistentWithHosts) {
  const auto result = run_study(small_dc(), small_settings());
  for (const auto& r : result.results) {
    EXPECT_GT(r.provisioned_hosts, 0u);
    EXPECT_GT(r.space_cost, 0.0);
    EXPECT_GT(r.power_cost, 0.0);
  }
  // Space cost ordering matches host-count ordering.
  const auto& semi = result.get(Algorithm::kSemiStatic);
  const auto& stoch = result.get(Algorithm::kStochastic);
  EXPECT_EQ(stoch.space_cost < semi.space_cost,
            stoch.provisioned_hosts < semi.provisioned_hosts);
}

TEST(Study, StochasticBeatsVanillaOnSpace) {
  // Fig 7(a): intelligent semi-static <= vanilla for every workload.
  const auto result = run_study(small_dc(150), small_settings());
  EXPECT_LE(result.normalized_space_cost(Algorithm::kStochastic), 1.0);
}

TEST(Study, DynamicSavesPowerOnBurstyWorkload) {
  // Fig 7(b): dynamic consolidation saves substantial power on the
  // Banking-like workload.
  const auto result = run_study(small_dc(150), small_settings());
  EXPECT_LT(result.normalized_power_cost(Algorithm::kDynamic), 0.9);
}

TEST(Study, DynamicReportsMigrations) {
  const auto result = run_study(small_dc(), small_settings());
  const auto& dyn = result.get(Algorithm::kDynamic);
  EXPECT_EQ(dyn.migrations_per_interval.size(),
            small_settings().intervals());
  EXPECT_GT(dyn.total_migrations, 0u);
  const auto& semi = result.get(Algorithm::kSemiStatic);
  EXPECT_EQ(semi.total_migrations, 0u);
}

TEST(Study, StaticPlansKeepAllHostsActive) {
  const auto result = run_study(small_dc(), small_settings());
  const auto& semi = result.get(Algorithm::kSemiStatic);
  for (auto active : semi.emulation.active_hosts_per_interval)
    EXPECT_EQ(active, semi.provisioned_hosts);
}

TEST(Study, DynamicVariesActiveHosts) {
  const auto result = run_study(small_dc(150), small_settings());
  const auto& dyn = result.get(Algorithm::kDynamic);
  std::size_t lo = dyn.emulation.active_hosts_per_interval[0];
  std::size_t hi = lo;
  for (auto active : dyn.emulation.active_hosts_per_interval) {
    lo = std::min(lo, active);
    hi = std::max(hi, active);
  }
  EXPECT_LT(lo, hi);  // Fig 12: wide active-server distribution
}

TEST(Study, HonorsConstraints) {
  const auto dc = small_dc(40);
  ConstraintSet cs(dc.servers.size());
  cs.add_affinity(0, 1);
  cs.add_anti_affinity(2, 3);
  const auto result = run_study(dc, small_settings(), cs);
  for (const auto& r : result.results) EXPECT_GT(r.provisioned_hosts, 1u);
}

TEST(Study, GetUnknownAlgorithmThrows) {
  StudyResult empty;
  EXPECT_THROW(empty.get(Algorithm::kDynamic), std::out_of_range);
}

TEST(SensitivitySweep, HostsDecreaseWithUtilizationBound) {
  const auto dc = small_dc(120);
  const std::vector<double> bounds{0.6, 0.7, 0.8, 0.9, 1.0};
  const auto result = sensitivity_sweep(dc, small_settings(), bounds);
  ASSERT_EQ(result.dynamic_points.size(), bounds.size());
  EXPECT_GT(result.semi_static_hosts, 0u);
  EXPECT_GT(result.stochastic_hosts, 0u);
  // Trend: more reservation (smaller U) never needs fewer hosts, modulo
  // one host of heuristic slack.
  for (std::size_t i = 1; i < result.dynamic_points.size(); ++i) {
    EXPECT_GE(result.dynamic_points[i - 1].dynamic_hosts + 1,
              result.dynamic_points[i].dynamic_hosts);
  }
}

TEST(AlgorithmNames, Stable) {
  EXPECT_STREQ(to_string(Algorithm::kSemiStatic), "Semi-Static");
  EXPECT_STREQ(to_string(Algorithm::kStochastic), "Stochastic");
  EXPECT_STREQ(to_string(Algorithm::kDynamic), "Dynamic");
}

}  // namespace
}  // namespace vmcw
