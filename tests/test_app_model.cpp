// Unit tests for the Olio-calibrated application resource model.

#include "trace/app_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace vmcw {
namespace {

TEST(AppResourceModel, ReproducesPaperOlioEndpoints) {
  // Section 4.1: throughput 10 -> 60 ops/s gives CPU 0.18 -> 1.42 cores
  // (7.9x) and memory 3x.
  const AppResourceModel olio;
  EXPECT_NEAR(olio.cpu_for_throughput(10.0), 0.18, 1e-9);
  EXPECT_NEAR(olio.cpu_for_throughput(60.0) / olio.cpu_for_throughput(10.0),
              7.9, 0.05);
  EXPECT_NEAR(olio.mem_for_throughput(60.0) / olio.mem_for_throughput(10.0),
              3.0, 0.02);
}

TEST(AppResourceModel, CpuSuperlinearMemorySublinear) {
  const AppResourceModel olio;
  // Doubling throughput more than doubles CPU but less than doubles memory.
  EXPECT_GT(olio.cpu_for_throughput(20.0), 2.0 * olio.cpu_for_throughput(10.0));
  EXPECT_LT(olio.mem_for_throughput(20.0), 2.0 * olio.mem_for_throughput(10.0));
}

TEST(AppResourceModel, MemScaleIdentityAtOne) {
  const AppResourceModel olio;
  EXPECT_NEAR(olio.mem_scale_for_cpu_scale(1.0), 1.0, 1e-12);
}

TEST(AppResourceModel, MemScaleConsistentWithThroughputCurves) {
  const AppResourceModel olio;
  // If CPU scales by cpu(60)/cpu(10), memory should scale by mem(60)/mem(10).
  const double cpu_scale =
      olio.cpu_for_throughput(60.0) / olio.cpu_for_throughput(10.0);
  const double mem_scale =
      olio.mem_for_throughput(60.0) / olio.mem_for_throughput(10.0);
  EXPECT_NEAR(olio.mem_scale_for_cpu_scale(cpu_scale), mem_scale, 1e-6);
}

TEST(AppResourceModel, MemScaleMonotone) {
  const AppResourceModel olio;
  double prev = 0;
  for (double s : {0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    const double m = olio.mem_scale_for_cpu_scale(s);
    EXPECT_GT(m, prev);
    prev = m;
  }
}

TEST(AppResourceModel, DampensVariability) {
  // The core of Observation 2: a CPU swing of 10x becomes a memory swing
  // of ~3.4x — about an order of magnitude less variance.
  const AppResourceModel olio;
  const double mem_swing = olio.mem_scale_for_cpu_scale(10.0);
  EXPECT_LT(mem_swing, 4.0);
  EXPECT_GT(mem_swing, 3.0);
}

TEST(AppResourceModel, CustomCalibration) {
  AppResourceModel::Calibration c;
  c.cpu_exponent = 1.0;
  c.mem_exponent = 1.0;
  const AppResourceModel linear(c);
  EXPECT_NEAR(linear.mem_scale_for_cpu_scale(7.0), 7.0, 1e-9);
}

TEST(AppResourceModel, HandlesZeroThroughput) {
  const AppResourceModel olio;
  EXPECT_GE(olio.cpu_for_throughput(0.0), 0.0);
  EXPECT_GE(olio.mem_for_throughput(0.0), 0.0);
  EXPECT_GE(olio.mem_scale_for_cpu_scale(0.0), 0.0);
}

}  // namespace
}  // namespace vmcw
