// Cross-preset integration tests: the Section 5 orderings that define the
// paper's findings, asserted on scaled-down versions of all four estates.
//
// These are the repository's regression net for the calibrated presets: if
// generator tuning ever drifts far enough to flip a headline finding, one
// of these fails.

#include <gtest/gtest.h>

#include "analysis/burstiness.h"
#include "analysis/resource_ratio.h"
#include "core/study.h"
#include "trace/generator.h"
#include "trace/presets.h"

namespace vmcw {
namespace {

struct PresetCase {
  const char* name;
  int servers;
};

class StudyPreset : public ::testing::TestWithParam<PresetCase> {
 protected:
  StudyResult run() const {
    const auto spec = scaled_down(workload_spec_by_name(GetParam().name),
                                  GetParam().servers, kHoursPerMonth);
    return run_study(generate_datacenter(spec, kStudySeed), StudySettings{});
  }
};

TEST_P(StudyPreset, VanillaNormalizesToOne) {
  const auto study = run();
  EXPECT_DOUBLE_EQ(study.normalized_space_cost(Algorithm::kSemiStatic), 1.0);
  EXPECT_DOUBLE_EQ(study.normalized_power_cost(Algorithm::kSemiStatic), 1.0);
}

TEST_P(StudyPreset, StochasticNeverWorseThanVanilla) {
  // Observation 5's partner fact: intelligent semi-static consolidation
  // dominates vanilla on both axes for every workload.
  const auto study = run();
  EXPECT_LE(study.normalized_space_cost(Algorithm::kStochastic), 1.0 + 1e-9);
  EXPECT_LE(study.normalized_power_cost(Algorithm::kStochastic), 1.01);
}

TEST_P(StudyPreset, StaticVariantsNeverContendMuch) {
  // Fig 8: static-variant contention is at most isolated hours.
  const auto study = run();
  EXPECT_LT(study.get(Algorithm::kSemiStatic)
                .emulation.contention_time_fraction(),
            0.03);
  EXPECT_LT(study.get(Algorithm::kStochastic)
                .emulation.contention_time_fraction(),
            0.03);
}

TEST_P(StudyPreset, OnlyDynamicMigrates) {
  const auto study = run();
  EXPECT_EQ(study.get(Algorithm::kSemiStatic).total_migrations, 0u);
  EXPECT_EQ(study.get(Algorithm::kStochastic).total_migrations, 0u);
  EXPECT_GT(study.get(Algorithm::kDynamic).total_migrations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, StudyPreset,
    ::testing::Values(PresetCase{"A", 150}, PresetCase{"B", 150},
                      PresetCase{"C", 200}, PresetCase{"D", 150}),
    [](const ::testing::TestParamInfo<PresetCase>& info) {
      return std::string(info.param.name);
    });

TEST(StudyHeadlines, MemoryBoundEstatesLoseWithDynamic) {
  // Fig 7(a) for Airlines: the 20% reservation makes dynamic strictly
  // worse than both static variants on space.
  const auto spec = scaled_down(airlines_spec(), 150, kHoursPerMonth);
  const auto study =
      run_study(generate_datacenter(spec, kStudySeed), StudySettings{});
  EXPECT_GT(study.normalized_space_cost(Algorithm::kDynamic), 1.05);
  EXPECT_GT(study.normalized_power_cost(Algorithm::kDynamic), 1.0);
}

TEST(StudyHeadlines, BurstyEstateWinsPowerWithDynamic) {
  // Fig 7(b) for Banking: dynamic cuts power far below both static plans.
  const auto spec = scaled_down(banking_spec(), 150, kHoursPerMonth);
  const auto study =
      run_study(generate_datacenter(spec, kStudySeed), StudySettings{});
  EXPECT_LT(study.normalized_power_cost(Algorithm::kDynamic),
            0.75 * study.normalized_power_cost(Algorithm::kStochastic));
}

TEST(StudyHeadlines, BankingCrossoverNearFifteenPercentReservation) {
  // Fig 13: dynamic meets stochastic somewhere in the U = 0.80-0.95 band.
  const auto spec = scaled_down(banking_spec(), 200, kHoursPerMonth);
  const auto dc = generate_datacenter(spec, kStudySeed);
  const std::vector<double> bounds{0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00};
  const auto sweep = sensitivity_sweep(dc, StudySettings{}, bounds);
  double crossover = -1.0;
  for (const auto& p : sweep.dynamic_points) {
    if (p.dynamic_hosts <= sweep.stochastic_hosts) {
      crossover = p.utilization_bound;
      break;
    }
  }
  ASSERT_GT(crossover, 0.0) << "dynamic never reached stochastic";
  EXPECT_GE(crossover, 0.75);
  EXPECT_LE(crossover, 0.95);
}

TEST(StudyHeadlines, AirlinesRatioFarBelowBlade) {
  // Fig 6(b): the airline estate's CPU:memory ratio stays below 50.
  const auto spec = scaled_down(airlines_spec(), 150, kHoursPerMonth);
  const auto dc = generate_datacenter(spec, kStudySeed);
  const auto cdf = resource_ratio_cdf(dc, 2, 336);
  EXPECT_LT(cdf.max(), 50.0);
}

TEST(StudyHeadlines, BurstinessOrderingAcrossEstates) {
  // Fig 3's ordering of heavy-tailed fractions: A ~ D >> B >> C.
  auto heavy = [](const char* name) {
    const auto spec =
        scaled_down(workload_spec_by_name(name), 200, kHoursPerMonth);
    return heavy_tailed_fraction(
        burstiness(generate_datacenter(spec, kStudySeed), Resource::kCpu, 1));
  };
  const double a = heavy("A"), b = heavy("B"), c = heavy("C"), d = heavy("D");
  EXPECT_GT(a, b);
  EXPECT_GT(d, b);
  EXPECT_GT(b, c);
  EXPECT_GT(a, 0.35);
  EXPECT_LT(c, 0.15);
}

}  // namespace
}  // namespace vmcw
