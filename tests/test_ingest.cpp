// Network ingestion front-end: the bounded ingress queue, the collector's
// retry schedule, protocol decode under fuzzed input, the deterministic
// I/O fault plan, the WAL's hooked I/O (EINTR, short writes, injected
// fsync stalls), and the end-to-end contracts over real Unix sockets —
// multi-collector chaos runs whose WAL replays byte-identical at any
// thread count, WAL-stall shedding that never drops an acked frame, and
// exactly-once WAL semantics across a daemon crash + resume.

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "service/io_fault_hooks.h"
#include "chaos/io_faults.h"
#include "runtime/bounded_queue.h"
#include "runtime/telemetry.h"
#include "runtime/thread_pool.h"
#include "service/churn.h"
#include "service/collector.h"
#include "service/daemon.h"
#include "service/ingest.h"
#include "service/protocol.h"
#include "service/telemetry_log.h"
#include "util/rng.h"

namespace vmcw::service {
namespace {

namespace fs = std::filesystem;

std::string temp_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// The churn stream the socket tests deliver: small enough to run in
/// milliseconds, busy enough to exercise arrivals, departures, telemetry
/// and every tick-spine frame.
std::vector<Frame> small_churn() {
  ChurnOptions churn;
  churn.agents = 4;
  churn.initial_vms = 24;
  churn.ticks = 8;
  churn.arrivals_per_tick = 1.5;
  churn.departure_prob = 0.05;
  churn.blackout_prob = 0.0;
  churn.mean_host_fraction = 0.3;
  churn.seed = 11;
  return generate_churn(churn, ControllerConfig{});
}

std::vector<Frame> sample_frames() {
  return {
      HelloFrame{kProtocolVersion, 0xfeedface, "producer-a"},
      HeartbeatFrame{7},
      FlushFrame{8},
      ShutdownFrame{9},
      HostTelemetryDeltaFrame{
          4, 2, {VmSample{11, 1.5, 2048.0}, VmSample{12, 0.25, 512.5}}},
      VmArrivalFrame{3, 42, "web-tier", 2.75, 4096.0},
      VmDepartureFrame{5, 42},
      DecisionBatchFrame{
          6,
          true,
          {Decision{42, DecisionAction::kAdmit, DecisionReason::kAdmitted, -1,
                    3}}},
      AckFrame{12345},
      RejectFrame{7, RejectCode::kShedding, "wal stalled"},
  };
}

// ------------------------------------------------------------ BoundedQueue

TEST(BoundedQueue, FifoWithBackpressureAtCapacity) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  // Full: the producer's signal to stop reading its socket.
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.size(), 3u);

  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_TRUE(q.try_push(4));  // room again
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseDrainsPendingThenSignalsShutdown) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(10));
  EXPECT_TRUE(q.push(20));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.try_push(30));
  EXPECT_FALSE(q.push(40));
  // Pending items survive the close; then the empty optional ends the
  // consumer loop.
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 20);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(2);
  std::optional<int> got = 99;
  std::thread consumer([&] { got = q.pop(); });
  q.close();
  consumer.join();
  EXPECT_FALSE(got.has_value());
}

// ----------------------------------------------------------------- backoff

TEST(Backoff, DoublesUntilCapAndSaturates) {
  EXPECT_EQ(reconnect_backoff_ms(0, 2, 200), 2u);
  EXPECT_EQ(reconnect_backoff_ms(1, 2, 200), 4u);
  EXPECT_EQ(reconnect_backoff_ms(2, 2, 200), 8u);
  EXPECT_EQ(reconnect_backoff_ms(6, 2, 200), 128u);
  EXPECT_EQ(reconnect_backoff_ms(7, 2, 200), 200u);  // 256 capped
  EXPECT_EQ(reconnect_backoff_ms(1000, 2, 200), 200u);
  // The shift saturates instead of overflowing into a tiny delay.
  EXPECT_EQ(reconnect_backoff_ms(62, 2, 200), 200u);
  EXPECT_EQ(reconnect_backoff_ms(63, ~0ULL, 500), 500u);
  EXPECT_EQ(reconnect_backoff_ms(5, 0, 200), 0u);  // backoff disabled
}

// ----------------------------------------------------------- decode fuzzing

/// Either decode_frame throws, or it returns a frame whose re-encoding is
/// byte-identical to what it consumed. Nothing in between: no
/// partially-understood input, ever.
void expect_decode_total(const std::uint8_t* data, std::size_t size) {
  DecodedFrame decoded;
  try {
    decoded = decode_frame(data, size);
  } catch (const std::runtime_error&) {
    return;  // rejected outright: fine
  }
  ASSERT_LE(decoded.consumed, size);
  const std::vector<std::uint8_t> again = encode_frame(decoded.frame);
  ASSERT_EQ(again.size(), decoded.consumed);
  EXPECT_EQ(std::vector<std::uint8_t>(data, data + decoded.consumed), again);
}

TEST(ProtocolFuzz, TruncationsBitFlipsAndLengthLies) {
  Rng rng(0x1060'57f0);
  for (const Frame& frame : sample_frames()) {
    const std::vector<std::uint8_t> good = encode_frame(frame);
    // Every truncation point.
    for (std::size_t cut = 0; cut < good.size(); ++cut) {
      EXPECT_THROW(decode_frame(good.data(), cut), std::runtime_error)
          << to_string(frame_kind(frame)) << " cut at " << cut;
    }
    // Random single-bit flips anywhere in the encoding.
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> bytes = good;
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      expect_decode_total(bytes.data(), bytes.size());
    }
    // Length-field lies: claim anything from 0 to far past the buffer.
    for (int trial = 0; trial < 200; ++trial) {
      std::vector<std::uint8_t> bytes = good;
      const auto lie = static_cast<std::uint64_t>(
          rng.uniform_int(0, 1'000'000));
      for (std::size_t b = 0; b < 8; ++b)
        bytes[1 + b] = static_cast<std::uint8_t>(lie >> (8 * b));
      expect_decode_total(bytes.data(), bytes.size());
    }
  }
}

TEST(ProtocolFuzz, RandomGarbageNeverDecodesPartially) {
  Rng rng(0xbadc'0de5);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto size =
        static_cast<std::size_t>(rng.uniform_int(0, 96));
    std::vector<std::uint8_t> bytes(size);
    for (auto& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    expect_decode_total(bytes.data(), bytes.size());
  }
}

// -------------------------------------------------------------- IoFaultPlan

TEST(IoFaultPlan, SameSeedSameScheduleAnyQueryOrder) {
  IoFaultSpec spec;
  spec.disconnect_rate = 0.1;
  spec.corrupt_rate = 0.1;
  spec.partial_write_rate = 0.2;
  spec.fsync_stall_rate = 0.15;
  const IoFaultPlan a = IoFaultPlan::generate(spec, 42);
  const IoFaultPlan b = IoFaultPlan::generate(spec, 42);
  const IoFaultPlan c = IoFaultPlan::generate(spec, 43);

  bool any_fault = false, differs = false;
  for (std::uint64_t collector = 0; collector < 4; ++collector) {
    for (std::uint64_t m = 0; m < 200; ++m) {
      EXPECT_EQ(a.disconnect_after(collector, m),
                b.disconnect_after(collector, m));
      EXPECT_EQ(a.corrupt_message(collector, m),
                b.corrupt_message(collector, m));
      EXPECT_EQ(a.split_write(collector, m), b.split_write(collector, m));
      EXPECT_EQ(a.corrupt_byte(collector, m, 64),
                b.corrupt_byte(collector, m, 64));
      any_fault = any_fault || a.disconnect_after(collector, m) ||
                  a.corrupt_message(collector, m);
      differs = differs || (a.disconnect_after(collector, m) !=
                            c.disconnect_after(collector, m));
    }
  }
  for (std::uint64_t append = 0; append < 400; ++append)
    EXPECT_EQ(a.fsync_stall(append), b.fsync_stall(append));
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(differs);  // a different seed is a different schedule
}

TEST(IoFaultPlan, RatesApproximateProbabilities) {
  IoFaultSpec spec;
  spec.disconnect_rate = 0.3;
  const IoFaultPlan plan = IoFaultPlan::generate(spec, 7);
  std::size_t hits = 0;
  const std::size_t trials = 20000;
  for (std::uint64_t m = 0; m < trials; ++m)
    if (plan.disconnect_after(0, m)) ++hits;
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.03);
}

TEST(IoFaultPlan, ValidatedClampsHostileKnobs) {
  IoFaultSpec hostile;
  hostile.disconnect_rate = 3.5;
  hostile.corrupt_rate = -1.0;
  hostile.fsync_stall_seconds = -4.0;
  hostile.fsync_stall_appends = 0;
  const IoFaultSpec sane = hostile.validated();
  EXPECT_LE(sane.disconnect_rate, 1.0);
  EXPECT_GE(sane.corrupt_rate, 0.0);
  EXPECT_GE(sane.fsync_stall_seconds, 0.0);
  EXPECT_GE(sane.fsync_stall_appends, 1u);
}

TEST(IoFaultPlan, ScriptedFaultsOnAnEmptyPlan) {
  IoFaultPlan plan;  // clean pipes
  EXPECT_FALSE(plan.disconnect_after(0, 5));
  EXPECT_EQ(plan.fsync_stall(3), 0.0);

  plan.force_disconnect(1, 7);
  plan.force_corrupt(0, 2);
  plan.force_stall_window(10, 4, 0.25);

  EXPECT_TRUE(plan.disconnect_after(1, 7));
  EXPECT_FALSE(plan.disconnect_after(1, 8));
  EXPECT_FALSE(plan.disconnect_after(0, 7));
  EXPECT_TRUE(plan.corrupt_message(0, 2));
  EXPECT_FALSE(plan.corrupt_message(0, 3));
  EXPECT_EQ(plan.fsync_stall(9), 0.0);
  for (std::uint64_t append = 10; append < 14; ++append)
    EXPECT_EQ(plan.fsync_stall(append), 0.25) << "append " << append;
  EXPECT_EQ(plan.fsync_stall(14), 0.0);
}

TEST(IoFaultPlan, SplitPointsStayInteriorAndCorruptBytesInRange) {
  IoFaultSpec spec;
  spec.partial_write_rate = 1.0;
  spec.corrupt_rate = 1.0;
  const IoFaultPlan plan = IoFaultPlan::generate(spec, 3);
  for (std::uint64_t m = 0; m < 500; ++m) {
    const std::size_t split = plan.split_point(0, m, 40);
    EXPECT_GE(split, 1u);
    EXPECT_LE(split, 39u);
    EXPECT_LT(plan.corrupt_byte(0, m, 40), 40u);
  }
}

// -------------------------------------------------- WAL I/O hooks hardening

/// Hooks that stress the append retry path: every write is short (at most
/// 3 bytes) and every other call is interrupted first.
class FlakyWalHooks : public WalIoHooks {
 public:
  long write_some(int fd, const std::uint8_t* data,
                  std::size_t size) override {
    if (++calls_ % 2 == 0) {
      errno = EINTR;
      return -1;
    }
    return WalIoHooks::write_some(fd, data, std::min<std::size_t>(size, 3));
  }

 private:
  std::uint64_t calls_ = 0;
};

/// Hooks that hard-fail every write after the first `allowed` calls.
class FailingWalHooks : public WalIoHooks {
 public:
  explicit FailingWalHooks(std::uint64_t allowed) : allowed_(allowed) {}
  long write_some(int fd, const std::uint8_t* data,
                  std::size_t size) override {
    if (calls_++ >= allowed_) {
      errno = EIO;
      return -1;
    }
    return WalIoHooks::write_some(fd, data, size);
  }

 private:
  std::uint64_t allowed_ = 0;
  std::uint64_t calls_ = 0;
};

TEST(WalIoHooks, ShortWritesAndEintrStillProduceAnIntactLog) {
  const std::string dir = temp_dir("vmcw_ingest_flaky");
  const std::string path = dir + "/flaky.wal";
  const auto frames = sample_frames();

  FlakyWalHooks hooks;
  FrameLog log;
  log.set_io_hooks(&hooks);
  log.open(path, fleet_config_hash(ControllerConfig{}), /*resume=*/false);
  for (const Frame& frame : frames) log.append(frame, /*sync=*/false);
  log.sync();
  log.close();

  const WalContents contents = read_frame_log(path);
  EXPECT_FALSE(contents.torn_tail);
  EXPECT_EQ(contents.frames, frames);
}

TEST(WalIoHooks, HardWriteErrorClosesTheLogInsteadOfTearingIt) {
  const std::string dir = temp_dir("vmcw_ingest_eio");
  const std::string path = dir + "/eio.wal";

  // Enough budget for one frame (the header write predates the hooks'
  // surface — open() is not an append), then the disk "dies".
  FailingWalHooks hooks(/*allowed=*/1);
  FrameLog log;
  log.set_io_hooks(&hooks);
  log.open(path, fleet_config_hash(ControllerConfig{}), /*resume=*/false);
  log.append(HeartbeatFrame{1});
  EXPECT_TRUE(log.is_open());
  log.append(HeartbeatFrame{2});  // hits the injected EIO
  EXPECT_FALSE(log.is_open());
  log.append(HeartbeatFrame{3});  // no-op on a closed log, not a crash

  // Whatever is on disk is intact: no partial interleave from the failed
  // append.
  const WalContents contents = read_frame_log(path);
  EXPECT_FALSE(contents.torn_tail);
  EXPECT_EQ(contents.frames, std::vector<Frame>{Frame{HeartbeatFrame{1}}});
}

TEST(WalIoHooks, InjectedStallIsMeasuredAndRecordedToMetrics) {
  const std::string dir = temp_dir("vmcw_ingest_stallmeter");
  const std::string path = dir + "/stall.wal";

  IoFaultPlan plan;
  plan.force_stall_window(/*first_append=*/0, /*appends=*/100, 0.123);
  StallingWalHooks hooks(plan);

  MetricsRegistry::global().clear();
  FrameLog log;
  log.set_io_hooks(&hooks);
  log.open(path, fleet_config_hash(ControllerConfig{}), /*resume=*/false);
  EXPECT_EQ(log.last_sync_seconds(), 0.0);
  log.append(HeartbeatFrame{1}, /*sync=*/true);
  EXPECT_NEAR(log.last_sync_seconds(), 0.123, 1e-9);
  log.close();

  const auto hist =
      MetricsRegistry::global().histogram("service.wal_fsync_seconds");
  ASSERT_GE(hist.count, 1u);
  EXPECT_NEAR(hist.max, 0.123, 1e-9);
  EXPECT_GE(hooks.syncs(), 1u);
}

// ----------------------------------------------------------- partitioning

TEST(PartitionStream, RoutesDeterministicallyAndTerminatesEachPartition) {
  const auto frames = small_churn();
  const std::size_t collectors = 3, agents = 4;
  const auto parts = partition_stream(frames, collectors, agents);
  ASSERT_EQ(parts.size(), collectors);

  std::size_t kept = 0, originals = 0;
  for (const Frame& frame : frames)
    if (!std::holds_alternative<HelloFrame>(frame) &&
        !std::holds_alternative<ShutdownFrame>(frame))
      ++originals;

  for (std::size_t i = 0; i < collectors; ++i) {
    const auto& part = parts[i];
    ASSERT_FALSE(part.empty());
    // Exactly one Shutdown, at the end; no Hellos (sessions bring their
    // own handshake).
    EXPECT_TRUE(std::holds_alternative<ShutdownFrame>(part.back()));
    for (std::size_t k = 0; k + 1 < part.size(); ++k) {
      EXPECT_FALSE(std::holds_alternative<ShutdownFrame>(part[k]));
      EXPECT_FALSE(std::holds_alternative<HelloFrame>(part[k]));
      ++kept;
      // Routing is a pure function of the frame.
      if (const auto* t = std::get_if<HostTelemetryDeltaFrame>(&part[k])) {
        EXPECT_EQ(t->agent % collectors, i);
      }
      if (const auto* a = std::get_if<VmArrivalFrame>(&part[k])) {
        EXPECT_EQ((a->vm % agents) % collectors, i);
      }
      if (const auto* d = std::get_if<VmDepartureFrame>(&part[k])) {
        EXPECT_EQ((d->vm % agents) % collectors, i);
      }
    }
  }
  EXPECT_EQ(kept, originals);  // nothing lost, nothing duplicated
}

// ------------------------------------------------- end-to-end over sockets

struct ServeResult {
  IngestStats ingest;
  DaemonStats daemon;
  std::vector<CollectorStats> collectors;
};

/// Run one daemon + IngestServer on a Unix socket and N in-process
/// collector clients (each on its partition of `frames`), to completion.
ServeResult serve_churn(const std::string& dir,
                        const std::vector<Frame>& frames,
                        std::size_t collectors, std::size_t agents,
                        const IoFaultPlan* plan,
                        WalIoHooks* wal_hooks = nullptr,
                        IngestOptions options = {}) {
  Daemon::Options daemon_options;
  daemon_options.wal_path = dir + "/live.wal";
  daemon_options.decisions_path = dir + "/live.decisions";
  daemon_options.durable = true;
  Daemon daemon(ControllerConfig{}, daemon_options);
  if (wal_hooks != nullptr) daemon.set_io_hooks(wal_hooks);
  const auto opened = daemon.open();

  options.unix_path = dir + "/ingest.sock";
  options.expected_shutdowns = collectors;
  IngestServer server(daemon, options);
  server.start(opened.wal_frames);

  const auto parts = partition_stream(frames, collectors, agents);
  ServeResult result;
  result.collectors.resize(collectors);
  std::vector<std::thread> clients;
  clients.reserve(collectors);
  for (std::size_t i = 0; i < collectors; ++i) {
    clients.emplace_back([&, i] {
      CollectorOptions copts;
      copts.unix_path = options.unix_path;
      copts.peer = "collector-" + std::to_string(i);
      copts.fleet_hash = fleet_config_hash(ControllerConfig{});
      std::optional<PlannedTransportFaults> faults;
      if (plan != nullptr && plan->any()) faults.emplace(*plan, i);
      CollectorClient client(copts, faults ? &*faults : nullptr);
      result.collectors[i] = client.run(parts[i]);
    });
  }
  for (auto& t : clients) t.join();
  server.wait();
  daemon.close();
  result.ingest = server.stats();
  result.daemon = daemon.stats();
  return result;
}

/// The serve-mode determinism contract: the WAL the run produced replays
/// to the live decision bytes, at 1, 2 and 8 worker threads.
void expect_replay_identity(const std::string& dir) {
  const std::string live = file_bytes(dir + "/live.decisions");
  ASSERT_FALSE(live.empty());
  for (const std::size_t threads : {1u, 2u, 8u}) {
    const std::string replayed =
        dir + "/replay_t" + std::to_string(threads);
    ThreadPool pool(threads);
    ScopedPoolOverride scope(pool);
    replay_wal(dir + "/live.wal", replayed, ControllerConfig{},
               /*resume=*/false, /*durable=*/false);
    EXPECT_EQ(file_bytes(replayed), live) << "at " << threads << " threads";
  }
}

TEST(IngestServer, CleanMultiCollectorRunReplaysByteIdentical) {
  const std::string dir = temp_dir("vmcw_ingest_clean");
  const auto frames = small_churn();
  const auto result =
      serve_churn(dir, frames, /*collectors=*/3, /*agents=*/4,
                  /*plan=*/nullptr);

  std::size_t expected = 0;
  for (const auto& part : partition_stream(frames, 3, 4))
    expected += part.size();
  EXPECT_EQ(result.ingest.messages_ingested, expected);
  EXPECT_GE(result.ingest.connections_accepted, 3u);
  EXPECT_EQ(result.ingest.corrupt_frames, 0u);
  EXPECT_EQ(result.ingest.shutdowns_seen, 3u);
  EXPECT_GT(result.daemon.batches, 0u);
  expect_replay_identity(dir);
}

TEST(IngestServer, ChaosDisconnectsAndCorruptionStayExactlyOnce) {
  const std::string dir = temp_dir("vmcw_ingest_chaos");
  const auto frames = small_churn();

  IoFaultSpec spec;
  spec.disconnect_rate = 0.06;
  spec.corrupt_rate = 0.04;
  spec.partial_write_rate = 0.10;
  const IoFaultPlan plan = IoFaultPlan::generate(spec, 9);
  const auto result =
      serve_churn(dir, frames, /*collectors=*/3, /*agents=*/4, &plan);

  // Every partition frame landed in the WAL exactly once, despite every
  // retransmission and quarantine along the way.
  std::size_t expected = 0;
  for (const auto& part : partition_stream(frames, 3, 4))
    expected += part.size();
  EXPECT_EQ(result.ingest.messages_ingested, expected);
  EXPECT_EQ(result.ingest.shutdowns_seen, 3u);

  std::size_t faults = 0, reconnects = 0;
  for (const auto& stats : result.collectors) {
    faults += stats.faults_injected;
    reconnects += stats.reconnects;
  }
  EXPECT_GT(faults, 0u);
  EXPECT_GT(reconnects, 0u);
  EXPECT_GT(result.ingest.connections_accepted, 3u);

  const WalContents wal = read_frame_log(dir + "/live.wal");
  EXPECT_EQ(wal.frames.size(), expected);
  expect_replay_identity(dir);
}

TEST(IngestServer, WalStallShedsToHeartbeatOnlyAndRecovers) {
  const std::string dir = temp_dir("vmcw_ingest_shed");
  const auto frames = small_churn();

  // Healthy disk for a few appends, then a stall window far above the
  // shed watermark. The shed-mode probes (fsyncs without appends) advance
  // through the window, so recovery needs no cooperating traffic.
  IoFaultPlan plan;
  plan.force_stall_window(/*first_append=*/6, /*appends=*/20, 0.2);
  StallingWalHooks hooks(plan);

  IngestOptions options;
  options.shed_fsync_seconds = 0.050;
  options.recover_fsync_seconds = 0.010;
  // One frame per WAL batch: the stall plan indexes fsyncs, and this test
  // pins the per-append shed/recover cycle (batch-boundary shedding is the
  // recovery suite's concern).
  options.max_batch_frames = 1;
  const auto result = serve_churn(dir, frames, /*collectors=*/1,
                                  /*agents=*/4, /*plan=*/nullptr, &hooks,
                                  options);

  // Shedding engaged, data was refused while it lasted, and the collector
  // saw typed kShedding rejects (not drops, not fabricated acks).
  EXPECT_GE(result.ingest.shed_entries, 1u);
  EXPECT_GE(result.ingest.shed_rejects, 1u);
  EXPECT_GE(result.collectors[0].shed_backoffs, 1u);
  // ...and it recovered: the whole stream is durable.
  const auto parts = partition_stream(frames, 1, 4);
  EXPECT_EQ(result.ingest.messages_ingested, parts[0].size());
  // One collector delivers in order; acked == appended, so the WAL is the
  // partition, exactly — shedding never dropped an acked frame.
  const WalContents wal = read_frame_log(dir + "/live.wal");
  EXPECT_EQ(wal.frames, parts[0]);
  expect_replay_identity(dir);
}

TEST(IngestServer, BadHelloIsAFatalReject) {
  const std::string dir = temp_dir("vmcw_ingest_badhello");

  Daemon::Options daemon_options;
  daemon_options.wal_path = dir + "/live.wal";
  daemon_options.decisions_path = dir + "/live.decisions";
  Daemon daemon(ControllerConfig{}, daemon_options);
  const auto opened = daemon.open();

  IngestOptions options;
  options.unix_path = dir + "/ingest.sock";
  options.expected_shutdowns = 0;  // serve until stop()
  IngestServer server(daemon, options);
  server.start(opened.wal_frames);

  CollectorOptions copts;
  copts.unix_path = options.unix_path;
  copts.fleet_hash = 0xdeadbeef;  // not this fleet
  CollectorClient client(copts);
  EXPECT_THROW(client.run({Frame{HeartbeatFrame{1}}}), std::runtime_error);

  server.stop();
  server.wait();
  daemon.close();
  EXPECT_GE(server.stats().rejects_sent, 1u);
  EXPECT_EQ(server.stats().messages_ingested, 0u);
}

TEST(IngestServer, CrashResumeDedupesAlreadyDurableFrames) {
  const std::string dir = temp_dir("vmcw_ingest_resume");
  const auto frames = small_churn();
  const auto parts = partition_stream(frames, 1, 4);
  const std::vector<Frame>& stream = parts[0];
  const std::size_t half = stream.size() / 2;
  const std::vector<Frame> prefix(stream.begin(),
                                  stream.begin() + half);

  const auto serve_once = [&](bool resume,
                              const std::vector<Frame>& to_send,
                              std::size_t expected_shutdowns,
                              const std::string& wal) {
    Daemon::Options daemon_options;
    daemon_options.wal_path = wal;
    daemon_options.decisions_path = wal + ".decisions";
    daemon_options.resume = resume;
    Daemon daemon(ControllerConfig{}, daemon_options);
    const auto opened = daemon.open();

    IngestOptions options;
    options.unix_path = dir + "/ingest.sock";
    options.expected_shutdowns = expected_shutdowns;
    IngestServer server(daemon, options);
    server.start(opened.wal_frames);

    CollectorOptions copts;
    copts.unix_path = options.unix_path;
    copts.fleet_hash = fleet_config_hash(ControllerConfig{});
    CollectorClient client(copts);
    client.run(to_send);
    if (expected_shutdowns == 0) server.stop();
    server.wait();
    daemon.close();
    return server.stats();
  };

  // Phase 1: deliver the first half (no Shutdown yet), then the daemon
  // "crashes" — the server goes away with the WAL durable.
  const std::string wal = dir + "/resumed.wal";
  serve_once(/*resume=*/false, prefix, /*expected_shutdowns=*/0, wal);
  EXPECT_EQ(read_frame_log(wal).frames.size(), prefix.size());

  // Phase 2: the daemon restarts with --resume; the collector (which
  // never saw acks persist) resends the whole stream from scratch. The
  // dedup filter turns the first half into acks without re-appending.
  const IngestStats second =
      serve_once(/*resume=*/true, stream, /*expected_shutdowns=*/1, wal);
  EXPECT_EQ(second.duplicates_dropped, prefix.size());
  EXPECT_EQ(second.messages_ingested, stream.size() - prefix.size());

  // The resumed WAL is byte-identical to an uninterrupted delivery.
  const std::string uwal = dir + "/uninterrupted.wal";
  serve_once(/*resume=*/false, stream, /*expected_shutdowns=*/1, uwal);
  EXPECT_EQ(file_bytes(wal), file_bytes(uwal));
  EXPECT_EQ(file_bytes(wal + ".decisions"),
            file_bytes(uwal + ".decisions"));
}

}  // namespace
}  // namespace vmcw::service
