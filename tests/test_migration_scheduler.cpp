// Tests for the migration execution scheduler (Section 2.1's Execution
// step / Section 7's interval-feasibility argument).

#include "core/migration_scheduler.h"

#include <gtest/gtest.h>

#include "core/dynamic.h"
#include "test_helpers.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_fleet;
using testing::small_settings;

std::vector<VmWorkload> three_vms() {
  std::vector<VmWorkload> vms;
  vms.push_back(constant_vm("a", 100, 4096, 48));
  vms.push_back(constant_vm("b", 100, 4096, 48));
  vms.push_back(constant_vm("c", 100, 8192, 48));
  return vms;
}

TEST(MigrationJobs, OnlyMovedVmsBecomeJobs) {
  const auto vms = three_vms();
  Placement prev(3), next(3);
  prev.assign(0, 0);
  prev.assign(1, 0);
  prev.assign(2, 1);
  next.assign(0, 0);   // stays
  next.assign(1, 2);   // moves
  next.assign(2, 0);   // moves
  const auto jobs = migration_jobs(prev, next, vms, 0, MigrationConfig{});
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].vm, 1u);
  EXPECT_EQ(jobs[1].vm, 2u);
  EXPECT_EQ(jobs[0].from, 0);
  EXPECT_EQ(jobs[0].to, 2);
}

TEST(MigrationJobs, BiggerFootprintTakesLonger) {
  const auto vms = three_vms();
  Placement prev(3), next(3);
  for (std::size_t i = 0; i < 3; ++i) prev.assign(i, 0);
  for (std::size_t i = 0; i < 3; ++i) next.assign(i, 1 + (i == 2));
  const auto jobs = migration_jobs(prev, next, vms, 0, MigrationConfig{});
  ASSERT_EQ(jobs.size(), 3u);
  // VM c has 8 GB committed vs 4 GB for a/b.
  EXPECT_GT(jobs[2].duration_s, jobs[0].duration_s);
  EXPECT_NEAR(jobs[0].duration_s, jobs[1].duration_s, 1e-9);
}

TEST(ScheduleMigrations, EmptyIsZero) {
  const auto schedule = schedule_migrations({});
  EXPECT_DOUBLE_EQ(schedule.makespan_s, 0.0);
  EXPECT_EQ(schedule.peak_concurrency, 0u);
}

TEST(ScheduleMigrations, IndependentJobsRunConcurrently) {
  // Two migrations between disjoint host pairs: makespan = max duration.
  std::vector<MigrationJob> jobs{
      {0, 0, 1, 100.0},
      {1, 2, 3, 60.0},
  };
  const auto schedule = schedule_migrations(jobs, 2);
  EXPECT_DOUBLE_EQ(schedule.makespan_s, 100.0);
  EXPECT_EQ(schedule.peak_concurrency, 2u);
  EXPECT_DOUBLE_EQ(schedule.start_s[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.start_s[1], 0.0);
}

TEST(ScheduleMigrations, PerHostLimitSerializes) {
  // Three migrations out of the same source with a limit of 1: strictly
  // serial, makespan = sum.
  std::vector<MigrationJob> jobs{
      {0, 0, 1, 50.0},
      {1, 0, 2, 30.0},
      {2, 0, 3, 20.0},
  };
  const auto schedule = schedule_migrations(jobs, 1);
  EXPECT_DOUBLE_EQ(schedule.makespan_s, 100.0);
  EXPECT_EQ(schedule.peak_concurrency, 1u);
}

TEST(ScheduleMigrations, LimitTwoAllowsPairs) {
  std::vector<MigrationJob> jobs{
      {0, 0, 1, 50.0},
      {1, 0, 2, 50.0},
      {2, 0, 3, 50.0},
      {3, 0, 4, 50.0},
  };
  const auto schedule = schedule_migrations(jobs, 2);
  EXPECT_DOUBLE_EQ(schedule.makespan_s, 100.0);  // two waves of two
  EXPECT_EQ(schedule.peak_concurrency, 2u);
}

TEST(ScheduleMigrations, TargetSideAlsoConstrains) {
  // Different sources, same target, limit 1: serial on the target.
  std::vector<MigrationJob> jobs{
      {0, 0, 9, 40.0},
      {1, 1, 9, 40.0},
  };
  const auto schedule = schedule_migrations(jobs, 1);
  EXPECT_DOUBLE_EQ(schedule.makespan_s, 80.0);
}

TEST(ScheduleMigrations, StartTimesRespectConstraints) {
  std::vector<MigrationJob> jobs{
      {0, 0, 1, 50.0},
      {1, 0, 2, 30.0},
  };
  const auto schedule = schedule_migrations(jobs, 1);
  // Longest-first: job 0 starts at 0, job 1 waits for the source slot.
  EXPECT_DOUBLE_EQ(schedule.start_s[0], 0.0);
  EXPECT_DOUBLE_EQ(schedule.start_s[1], 50.0);
}

TEST(ExecutionFeasibility, DynamicPlanExecutesWithinTwoHourIntervals) {
  // The paper's premise: at 2h intervals, a consolidation plan's
  // migrations fit comfortably inside the interval.
  const auto vms = small_fleet(80);
  const auto settings = small_settings();
  const auto plan = plan_dynamic(vms, settings);
  ASSERT_TRUE(plan.has_value());
  const auto feasibility = execution_feasibility(
      plan->per_interval, vms, settings.eval_begin(), settings.interval_hours,
      MigrationConfig{});
  EXPECT_EQ(feasibility.infeasible_intervals, 0u);
  EXPECT_LT(feasibility.worst_utilization, 1.0);
  EXPECT_EQ(feasibility.makespan_s.size(), settings.intervals() - 1);
}

TEST(ExecutionFeasibility, NoMigrationsMeansZeroMakespan) {
  std::vector<VmWorkload> vms;
  for (int i = 0; i < 10; ++i)
    vms.push_back(constant_vm("v" + std::to_string(i), 500, 2048, 168));
  const auto settings = small_settings();
  const auto plan = plan_dynamic(vms, settings);
  ASSERT_TRUE(plan.has_value());
  const auto feasibility = execution_feasibility(
      plan->per_interval, vms, settings.eval_begin(), settings.interval_hours,
      MigrationConfig{});
  EXPECT_DOUBLE_EQ(feasibility.worst_makespan_s, 0.0);
}

}  // namespace
}  // namespace vmcw
