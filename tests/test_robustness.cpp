// Randomized robustness sweeps: planner and emulator invariants that must
// hold for any seed, fleet mix, loss rate or intensity — the repository's
// fuzz net.

#include <gtest/gtest.h>

#include "core/dynamic.h"
#include "core/emulator.h"
#include "core/hybrid.h"
#include "core/planners.h"
#include "monitoring/pipeline.h"
#include "test_helpers.h"
#include "validation/replay.h"

namespace vmcw {
namespace {

using testing::small_settings;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, DynamicPlanInvariants) {
  const auto vms = testing::small_fleet(70, GetParam());
  const auto settings = small_settings();
  const auto plan = plan_dynamic(vms, settings);
  ASSERT_TRUE(plan.has_value());
  ASSERT_EQ(plan->per_interval.size(), settings.intervals());
  std::size_t max_active = 0;
  for (const auto& p : plan->per_interval) {
    EXPECT_EQ(p.placed_count(), vms.size());
    max_active = std::max(max_active, p.active_host_count());
  }
  EXPECT_EQ(plan->max_active_hosts, max_active);
}

TEST_P(SeedSweep, AllPlannersAgreeOnOrdering) {
  // Static >= semi-static >= stochastic hosts, for any generated fleet:
  // each sizes over a superset (lifetime vs history) or more conservatively
  // (max vs body+clustered tails).
  const auto vms = testing::small_fleet(90, GetParam());
  const auto settings = small_settings();
  const auto stat = plan_static(vms, settings);
  const auto semi = plan_semi_static(vms, settings);
  const auto stoch = plan_stochastic(vms, settings);
  ASSERT_TRUE(stat && semi && stoch);
  EXPECT_GE(stat->hosts_used, semi->hosts_used);
  EXPECT_GE(semi->hosts_used + 1, stoch->hosts_used);  // 1 host FFD slack
}

TEST_P(SeedSweep, EmulatorConservation) {
  // Total active host-hours equal the sum over intervals of active hosts
  // times the interval length; energy is positive whenever anything runs.
  const auto vms = testing::small_fleet(50, GetParam());
  const auto settings = small_settings();
  const auto plan = plan_dynamic(vms, settings);
  ASSERT_TRUE(plan.has_value());
  const auto report = emulate(vms, plan->per_interval, settings, true);
  std::size_t interval_host_sum = 0;
  for (auto active : report.active_hosts_per_interval)
    interval_host_sum += active;
  std::size_t host_hours = 0;
  // Recompute from per-host averages is not possible (averages), but the
  // provisioned bound and totals must be consistent:
  for (auto active : report.active_hosts_per_interval) {
    EXPECT_LE(active, report.provisioned_hosts);
    host_hours += active * settings.interval_hours;
  }
  EXPECT_GT(report.energy_wh, 0.0);
  EXPECT_EQ(report.intervals, settings.intervals());
  EXPECT_GT(host_hours, 0u);
}

TEST_P(SeedSweep, HybridInterpolatesBetweenExtremes) {
  const auto vms = testing::small_fleet(60, GetParam());
  const auto settings = small_settings();
  const auto hybrid = plan_hybrid(vms, settings, 0.5);
  const auto dynamic = plan_dynamic(vms, settings);
  ASSERT_TRUE(hybrid && dynamic);
  // Half the fleet migrates at most as much as the whole fleet would.
  EXPECT_LE(hybrid->total_migrations, dynamic->total_migrations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(11, 22, 33, 44, 55));

class LossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LossSweep, WarehouseSurvivesSampleLoss) {
  const auto truth = generate_datacenter(
      scaled_down(beverage_spec(), 12, 96), 31);
  AgentConfig config;
  config.sample_loss_rate = GetParam();
  const auto warehouse = collect_datacenter(truth, config, 77);
  const auto rebuilt = reconstruct_datacenter(truth, warehouse);
  ASSERT_EQ(rebuilt.servers.size(), truth.servers.size());
  // Even at heavy loss, hourly means from the surviving samples stay close
  // (sampling error ~ sigma/sqrt(surviving minutes)).
  const auto fidelity = pipeline_fidelity(truth, rebuilt);
  EXPECT_LT(fidelity.cpu_mean_abs_rel_error, GetParam() < 0.9 ? 0.08 : 0.25);
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossSweep,
                         ::testing::Values(0.0, 0.2, 0.5, 0.9));

class IntensitySweep : public ::testing::TestWithParam<double> {};

TEST_P(IntensitySweep, ReplayTracksScaledTargets) {
  const RubisLikeApp app;
  ReplayDriver driver(app, MicroBenchmark{}, Rng(5));
  const double scale = GetParam();
  const ResourceVector target{1200.0 * scale, 2500.0 * scale};
  const auto point = driver.replay_hour(target);
  EXPECT_NEAR(point.achieved.cpu_rpe2 / target.cpu_rpe2, 1.0, 0.1);
  EXPECT_NEAR(point.achieved.memory_mb / target.memory_mb, 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(Scales, IntensitySweep,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 3.0));

class FractionSweep : public ::testing::TestWithParam<double> {};

TEST_P(FractionSweep, HybridMembershipMatchesFraction) {
  const auto vms = testing::small_fleet(80);
  const auto plan = plan_hybrid(vms, small_settings(), GetParam());
  ASSERT_TRUE(plan.has_value());
  std::size_t members = 0;
  for (bool d : plan->is_dynamic) members += d;
  EXPECT_NEAR(static_cast<double>(members),
              GetParam() * static_cast<double>(vms.size()), 1.0);
}

INSTANTIATE_TEST_SUITE_P(Fractions, FractionSweep,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 1.0));

}  // namespace
}  // namespace vmcw
