// Tests for the maintenance-evacuation planner.

#include "core/evacuation.h"

#include <gtest/gtest.h>

#include "core/planners.h"
#include "hardware/catalog.h"
#include "test_helpers.h"

namespace vmcw {
namespace {

using testing::constant_vm;

struct Scenario {
  std::vector<VmWorkload> vms;
  Placement placement;
  HostPool pool = HostPool::uniform(hs23_elite_blade());

  /// Three hosts, two small VMs each.
  Scenario() : placement(6) {
    for (int i = 0; i < 6; ++i)
      vms.push_back(constant_vm("v" + std::to_string(i), 1000.0, 8192.0, 48));
    for (std::size_t i = 0; i < 6; ++i)
      placement.assign(i, static_cast<std::int32_t>(i / 2));
  }
};

TEST(Evacuation, DrainsHostCompletely) {
  Scenario s;
  const auto plan = plan_evacuation(s.placement, 0, s.vms, 0, s.pool);
  ASSERT_TRUE(plan.has_value());
  for (std::size_t vm = 0; vm < s.vms.size(); ++vm) {
    EXPECT_TRUE(plan->after.is_placed(vm));
    EXPECT_NE(plan->after.host_of(vm), 0);
  }
  EXPECT_EQ(plan->jobs.size(), 2u);  // the two VMs of host 0
  EXPECT_GT(plan->schedule.makespan_s, 0.0);
}

TEST(Evacuation, OnlyEvacueesMove) {
  Scenario s;
  const auto plan = plan_evacuation(s.placement, 1, s.vms, 0, s.pool);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->after.host_of(0), 0);
  EXPECT_EQ(plan->after.host_of(1), 0);
  EXPECT_EQ(plan->after.host_of(4), 2);
  EXPECT_EQ(plan->after.host_of(5), 2);
  EXPECT_EQ(Placement::migrations_between(s.placement, plan->after), 2u);
}

TEST(Evacuation, RespectsDestinationBound) {
  Scenario s;
  // Destination bound so tight nothing fits anywhere else.
  EvacuationOptions options;
  options.destination_bound = 0.05;
  EXPECT_FALSE(
      plan_evacuation(s.placement, 0, s.vms, 0, s.pool, options).has_value());
}

TEST(Evacuation, DoesNotPowerOnIdleHosts) {
  Scenario s;
  // Host 3 exists in the pool but is empty; evacuees must go to hosts 1-2,
  // not wake a new one.
  const auto plan = plan_evacuation(s.placement, 0, s.vms, 0, s.pool);
  ASSERT_TRUE(plan.has_value());
  for (std::size_t vm = 0; vm < 2; ++vm) {
    EXPECT_GE(plan->after.host_of(vm), 1);
    EXPECT_LE(plan->after.host_of(vm), 2);
  }
}

TEST(Evacuation, PinnedToDrainingHostFails) {
  Scenario s;
  ConstraintSet cs(s.vms.size());
  cs.pin(0, 0);
  EXPECT_FALSE(plan_evacuation(s.placement, 0, s.vms, 0, s.pool,
                               EvacuationOptions{}, cs)
                   .has_value());
}

TEST(Evacuation, AntiAffinityHonored) {
  Scenario s;
  ConstraintSet cs(s.vms.size());
  // VM 0 (on host 0) must not share a host with VM 2 (host 1): the drain
  // must send VM 0 to host 2 even though host 1 has room.
  cs.add_anti_affinity(0, 2);
  cs.add_anti_affinity(0, 3);  // and not with VM 3 (also host 1)
  const auto plan = plan_evacuation(s.placement, 0, s.vms, 0, s.pool,
                                    EvacuationOptions{}, cs);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->after.host_of(0), 2);
}

TEST(Evacuation, MakespanScalesWithFootprint) {
  Scenario small;
  Scenario big;
  for (auto& vm : big.vms)
    for (std::size_t t = 0; t < vm.mem_mb.size(); ++t) vm.mem_mb[t] *= 4.0;
  const auto small_plan = plan_evacuation(small.placement, 0, small.vms, 0,
                                          small.pool);
  const auto big_plan = plan_evacuation(big.placement, 0, big.vms, 0,
                                        big.pool);
  ASSERT_TRUE(small_plan && big_plan);
  EXPECT_GT(big_plan->schedule.makespan_s, small_plan->schedule.makespan_s);
}

TEST(Evacuation, GeneratedFleetDrainWorks) {
  const auto vms = testing::small_fleet(60);
  // Place everything via the semi-static planner first.
  const auto settings = testing::small_settings();
  const auto plan = plan_semi_static(vms, settings);
  ASSERT_TRUE(plan.has_value());
  ASSERT_GE(plan->hosts_used, 2u);
  const auto drain =
      plan_evacuation(plan->placement, 0, vms, settings.eval_begin(),
                      HostPool::uniform(settings.target));
  if (drain.has_value()) {  // headroom-dependent; verify structure if it fit
    for (std::size_t vm = 0; vm < vms.size(); ++vm)
      EXPECT_NE(drain->after.host_of(vm), 0);
  }
}

}  // namespace
}  // namespace vmcw
