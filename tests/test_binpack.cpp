// Unit + property tests for the FFD 2-D vector packer.

#include "core/binpack.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace vmcw {
namespace {

constexpr ResourceVector kCap{100.0, 1000.0};

std::vector<ResourceVector> host_loads(const Placement& p,
                                       std::span<const ResourceVector> sizes) {
  std::vector<ResourceVector> loads(p.host_index_bound());
  for (std::size_t vm = 0; vm < p.vm_count(); ++vm)
    if (p.is_placed(vm))
      loads[static_cast<std::size_t>(p.host_of(vm))] += sizes[vm];
  return loads;
}

TEST(FfdPack, EmptyInput) {
  const auto result = ffd_pack({}, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hosts_used, 0u);
}

TEST(FfdPack, SingleItem) {
  const std::vector<ResourceVector> sizes{{50, 100}};
  const auto result = ffd_pack(sizes, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hosts_used, 1u);
  EXPECT_EQ(result->placement.host_of(0), 0);
}

TEST(FfdPack, OversizedItemFails) {
  const std::vector<ResourceVector> sizes{{101, 0}};
  EXPECT_FALSE(ffd_pack(sizes, kCap).has_value());
  const std::vector<ResourceVector> mem_over{{0, 1001}};
  EXPECT_FALSE(ffd_pack(mem_over, kCap).has_value());
}

TEST(FfdPack, ExactFitUsesOneHost) {
  const std::vector<ResourceVector> sizes{{50, 500}, {50, 500}};
  const auto result = ffd_pack(sizes, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hosts_used, 1u);
}

TEST(FfdPack, SplitsWhenEitherDimensionOverflows) {
  // CPU fits together but memory does not.
  const std::vector<ResourceVector> sizes{{10, 600}, {10, 600}};
  const auto result = ffd_pack(sizes, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hosts_used, 2u);
}

TEST(FfdPack, ClassicFfdExample) {
  // Six 0.6-capacity + six 0.4-capacity items: FFD pairs them 0.6+0.4,
  // using 6 hosts (optimal).
  std::vector<ResourceVector> sizes;
  for (int i = 0; i < 6; ++i) sizes.push_back({60, 0});
  for (int i = 0; i < 6; ++i) sizes.push_back({40, 0});
  const auto result = ffd_pack(sizes, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->hosts_used, 6u);
}

TEST(FfdPack, NeverViolatesCapacity) {
  Rng rng(5);
  std::vector<ResourceVector> sizes;
  for (int i = 0; i < 200; ++i)
    sizes.push_back({rng.uniform(1, 60), rng.uniform(10, 600)});
  const auto result = ffd_pack(sizes, kCap);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.placed_count(), sizes.size());
  for (const auto& load : host_loads(result->placement, sizes))
    EXPECT_TRUE(load.fits_within(kCap));
}

TEST(FfdPack, Deterministic) {
  Rng rng(6);
  std::vector<ResourceVector> sizes;
  for (int i = 0; i < 100; ++i)
    sizes.push_back({rng.uniform(1, 60), rng.uniform(10, 600)});
  const auto a = ffd_pack(sizes, kCap);
  const auto b = ffd_pack(sizes, kCap);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->placement, b->placement);
}

TEST(FfdPack, WithinAdditiveBoundOfLowerBound) {
  // FFD is 11/9 OPT + 1 in 1-D; check against the volume lower bound.
  Rng rng(7);
  std::vector<ResourceVector> sizes;
  double total_cpu = 0;
  for (int i = 0; i < 300; ++i) {
    const double c = rng.uniform(5, 50);
    sizes.push_back({c, 0});
    total_cpu += c;
  }
  const auto result = ffd_pack(sizes, kCap);
  ASSERT_TRUE(result.has_value());
  const double lower_bound = total_cpu / kCap.cpu_rpe2;
  EXPECT_LE(result->hosts_used, 11.0 / 9.0 * lower_bound + 2.0);
}

TEST(FfdPack, AffinityKeepsGroupTogether) {
  ConstraintSet cs(4);
  cs.add_affinity(0, 3);
  const std::vector<ResourceVector> sizes{
      {40, 100}, {40, 100}, {40, 100}, {40, 100}};
  const auto result = ffd_pack(sizes, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.host_of(0), result->placement.host_of(3));
  EXPECT_TRUE(cs.satisfied_by(result->placement));
}

TEST(FfdPack, AffinityGroupTooBigFails) {
  ConstraintSet cs(3);
  cs.add_affinity(0, 1);
  cs.add_affinity(1, 2);
  const std::vector<ResourceVector> sizes{{40, 0}, {40, 0}, {40, 0}};
  EXPECT_FALSE(ffd_pack(sizes, kCap, cs).has_value());
}

TEST(FfdPack, AntiAffinitySeparates) {
  ConstraintSet cs(2);
  cs.add_anti_affinity(0, 1);
  const std::vector<ResourceVector> sizes{{10, 10}, {10, 10}};
  const auto result = ffd_pack(sizes, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->placement.host_of(0), result->placement.host_of(1));
  EXPECT_EQ(result->hosts_used, 2u);
}

TEST(FfdPack, PinForcesHost) {
  ConstraintSet cs(2);
  cs.pin(1, 3);
  const std::vector<ResourceVector> sizes{{10, 10}, {10, 10}};
  const auto result = ffd_pack(sizes, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.host_of(1), 3);
  EXPECT_TRUE(cs.satisfied_by(result->placement));
}

TEST(FfdPack, ForbidAvoidsHost) {
  ConstraintSet cs(2);
  // Both VMs fill a host; forbid vm1 from host 0 so it must open host 1.
  cs.forbid(1, 0);
  const std::vector<ResourceVector> sizes{{60, 10}, {60, 10}};
  const auto result = ffd_pack(sizes, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_NE(result->placement.host_of(1), 0);
}

TEST(FfdPack, PinnedVmClaimsHostBeforeFreeVms) {
  // Regression: a pin to host 0 must succeed even when unpinned VMs would
  // otherwise fill host 0 first (pinned groups are placed before the FFD
  // pass).
  ConstraintSet cs(3);
  cs.pin(2, 0);
  // Two large VMs that each fill most of a host, and a pinned small one.
  const std::vector<ResourceVector> sizes{{90, 10}, {90, 10}, {20, 10}};
  const auto result = ffd_pack(sizes, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.host_of(2), 0);
  EXPECT_TRUE(cs.satisfied_by(result->placement));
}

TEST(FfdPack, InfeasibleConstraintsRejected) {
  ConstraintSet cs(2);
  cs.add_affinity(0, 1);
  cs.add_anti_affinity(0, 1);
  const std::vector<ResourceVector> sizes{{10, 10}, {10, 10}};
  EXPECT_FALSE(ffd_pack(sizes, kCap, cs).has_value());
}

TEST(DecreasingSizeOrder, SortsByMaxNormalizedDimension) {
  const std::vector<ResourceVector> sizes{
      {10, 900},   // norm 0.9 (memory)
      {50, 100},   // norm 0.5 (cpu)
      {99, 10},    // norm 0.99
  };
  const auto order = decreasing_size_order(sizes, kCap);
  EXPECT_EQ(order, (std::vector<std::size_t>{2, 0, 1}));
}

// Exhaustive optimum for tiny instances: try every assignment of items to
// at most n hosts (n^n combinations, n <= 7).
std::size_t brute_force_optimum(std::span<const ResourceVector> sizes,
                                const ResourceVector& capacity) {
  const std::size_t n = sizes.size();
  std::size_t best = n;
  std::vector<std::size_t> assignment(n, 0);
  const auto total = static_cast<std::size_t>(std::pow(n, n));
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t c = code;
    for (std::size_t i = 0; i < n; ++i) {
      assignment[i] = c % n;
      c /= n;
    }
    std::vector<ResourceVector> loads(n);
    bool feasible = true;
    for (std::size_t i = 0; i < n && feasible; ++i) {
      loads[assignment[i]] += sizes[i];
      feasible = loads[assignment[i]].fits_within(capacity);
    }
    if (!feasible) continue;
    std::size_t used = 0;
    for (const auto& load : loads)
      if (load.cpu_rpe2 > 0 || load.memory_mb > 0) ++used;
    best = std::min(best, used);
  }
  return best;
}

class FfdVsOptimal : public ::testing::TestWithParam<int> {};

TEST_P(FfdVsOptimal, WithinTheoreticalGuarantee) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1234567);
  std::vector<ResourceVector> sizes;
  const int n = 6;
  for (int i = 0; i < n; ++i)
    sizes.push_back({rng.uniform(10, 95), rng.uniform(50, 950)});
  const auto ffd = ffd_pack(sizes, kCap);
  ASSERT_TRUE(ffd.has_value());
  const std::size_t opt = brute_force_optimum(sizes, kCap);
  EXPECT_GE(ffd->hosts_used, opt);  // sanity: can't beat the optimum
  EXPECT_LE(static_cast<double>(ffd->hosts_used),
            11.0 / 9.0 * static_cast<double>(opt) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(TinyInstances, FfdVsOptimal, ::testing::Range(1, 13));

class RandomPackProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomPackProperty, AllPlacedAllWithinCapacity) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<ResourceVector> sizes;
  const int n = 50 + GetParam() * 37;
  for (int i = 0; i < n; ++i)
    sizes.push_back({rng.uniform(0.5, 99), rng.uniform(1, 999)});
  ConstraintSet cs(sizes.size());
  // Sprinkle some anti-affinity pairs.
  for (int i = 0; i + 1 < n && i < 10; i += 2)
    cs.add_anti_affinity(static_cast<std::size_t>(i),
                         static_cast<std::size_t>(i + 1));
  const auto result = ffd_pack(sizes, kCap, cs);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->placement.placed_count(), sizes.size());
  EXPECT_TRUE(cs.satisfied_by(result->placement));
  for (const auto& load : host_loads(result->placement, sizes))
    EXPECT_TRUE(load.fits_within(kCap));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPackProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace vmcw
