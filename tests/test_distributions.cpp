// Unit + property tests for util/distributions.h.

#include "util/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/stats.h"

namespace vmcw {
namespace {

std::vector<double> draw(auto& dist, Rng& rng, int n) {
  std::vector<double> xs(n);
  for (auto& x : xs) x = dist.sample(rng);
  return xs;
}

TEST(Pareto, SamplesAboveScale) {
  Rng rng(1);
  const Pareto p(2.0, 1.5);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(p.sample(rng), 2.0);
}

TEST(Pareto, AnalyticMeanMatchesEmpirical) {
  Rng rng(2);
  const Pareto p(1.0, 3.0);  // mean = 1.5, finite variance
  const auto xs = draw(p, rng, 200000);
  EXPECT_NEAR(mean(xs), p.mean(), 0.02);
}

TEST(Pareto, InfiniteMeanForSmallAlpha) {
  const Pareto p(1.0, 0.9);
  EXPECT_TRUE(std::isinf(p.mean()));
}

TEST(Pareto, HeavyTailHasLargeSamples) {
  Rng rng(3);
  const Pareto p(1.0, 1.1);
  double biggest = 0;
  for (int i = 0; i < 100000; ++i) biggest = std::max(biggest, p.sample(rng));
  EXPECT_GT(biggest, 100.0);  // alpha=1.1 virtually guarantees huge draws
}

TEST(BoundedPareto, RespectsBothBounds) {
  Rng rng(4);
  const BoundedPareto p(1.0, 1.3, 20.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = p.sample(rng);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 20.0);
  }
}

TEST(BoundedPareto, DegenerateBoundsCollapse) {
  Rng rng(5);
  const BoundedPareto p(3.0, 2.0, 3.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(p.sample(rng), 3.0);
}

struct MeanCov {
  double mean;
  double cov;
};

class LognormalRoundtrip : public ::testing::TestWithParam<MeanCov> {};

TEST_P(LognormalRoundtrip, RecoverMeanAndCov) {
  const auto [target_mean, target_cov] = GetParam();
  Rng rng(6);
  const auto dist = Lognormal::from_mean_cov(target_mean, target_cov);
  const auto xs = draw(dist, rng, 400000);
  EXPECT_NEAR(mean(xs) / target_mean, 1.0, 0.03);
  if (target_cov > 0) {
    EXPECT_NEAR(coefficient_of_variation(xs) / target_cov, 1.0, 0.08);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LognormalRoundtrip,
                         ::testing::Values(MeanCov{1.0, 0.2}, MeanCov{1.0, 0.5},
                                           MeanCov{0.05, 1.0},
                                           MeanCov{10.0, 0.8},
                                           MeanCov{3.0, 1.5}));

TEST(Lognormal, ZeroCovIsDegenerate) {
  Rng rng(7);
  const auto dist = Lognormal::from_mean_cov(4.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_NEAR(dist.sample(rng), 4.0, 1e-9);
}

TEST(Lognormal, AlwaysPositive) {
  Rng rng(8);
  const auto dist = Lognormal::from_mean_cov(0.01, 2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(dist.sample(rng), 0.0);
}

TEST(TruncatedNormal, StaysInBounds) {
  Rng rng(9);
  const TruncatedNormal dist(0.5, 0.3, 0.2, 0.8);
  for (int i = 0; i < 20000; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 0.2);
    EXPECT_LE(x, 0.8);
  }
}

TEST(TruncatedNormal, MeanApproximatelyCenter) {
  Rng rng(10);
  const TruncatedNormal dist(0.5, 0.1, 0.0, 1.0);
  const auto xs = draw(dist, rng, 50000);
  EXPECT_NEAR(mean(xs), 0.5, 0.01);
}

TEST(TruncatedNormal, FarOutMeanClampsToBound) {
  Rng rng(11);
  // Mean far above the interval: rejection gives up and clamps.
  const TruncatedNormal dist(10.0, 0.1, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    const double x = dist.sample(rng);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(TruncatedNormal, ZeroSigmaIsDeterministic) {
  Rng rng(12);
  const TruncatedNormal dist(0.4, 0.0, 0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(dist.sample(rng), 0.4);
}

TEST(Exponential, MeanIsInverseRate) {
  Rng rng(13);
  const Exponential dist(0.25);
  const auto xs = draw(dist, rng, 200000);
  EXPECT_NEAR(mean(xs), 4.0, 0.05);
}

TEST(Exponential, AlwaysNonNegative) {
  Rng rng(14);
  const Exponential dist(2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(dist.sample(rng), 0.0);
}

}  // namespace
}  // namespace vmcw
