// Tests for the emulator-validation subsystem (Section 5.2): synthetic
// apps, the replay control law, and the paper's accuracy acceptance bars.

#include <gtest/gtest.h>

#include "trace/generator.h"
#include "trace/presets.h"
#include "validation/replay.h"
#include "validation/synthetic_apps.h"

namespace vmcw {
namespace {

TEST(RubisLikeApp, CpuSuperlinearMemorySublinear) {
  const RubisLikeApp app;
  const auto at100 = app.demand_at(100);
  const auto at200 = app.demand_at(200);
  EXPECT_GT(at200.cpu_rpe2, 2.0 * at100.cpu_rpe2);
  EXPECT_LT(at200.memory_mb, 2.0 * at100.memory_mb);
}

TEST(RubisLikeApp, IntensityInversionRoundtrips) {
  const RubisLikeApp app;
  for (double clients : {10.0, 50.0, 100.0, 400.0}) {
    const double cpu = app.demand_at(clients).cpu_rpe2;
    EXPECT_NEAR(app.intensity_for_cpu(cpu), clients, clients * 1e-9);
  }
}

TEST(RubisLikeApp, ZeroIntensityHasBaseFootprintOnly) {
  const RubisLikeApp app;
  const auto demand = app.demand_at(0);
  EXPECT_DOUBLE_EQ(demand.cpu_rpe2, 0.0);
  EXPECT_GT(demand.memory_mb, 0.0);  // resident base memory
}

TEST(DaxpyLikeApp, LinearCpuConstantMemory) {
  const DaxpyLikeApp app;
  const auto at10 = app.demand_at(10);
  const auto at20 = app.demand_at(20);
  EXPECT_NEAR(at20.cpu_rpe2, 2.0 * at10.cpu_rpe2, 1e-9);
  EXPECT_DOUBLE_EQ(at10.memory_mb, at20.memory_mb);
}

TEST(DaxpyLikeApp, IntensityInversionRoundtrips) {
  const DaxpyLikeApp app;
  EXPECT_NEAR(app.intensity_for_cpu(app.demand_at(123.0).cpu_rpe2), 123.0,
              1e-9);
}

TEST(DaxpyLikeApp, MoreControllableThanRubis) {
  EXPECT_LT(DaxpyLikeApp{}.actuation_noise(), RubisLikeApp{}.actuation_noise());
}

TEST(MicroBenchmark, HitsTargetsClosely) {
  MicroBenchmark micro;
  Rng rng(1);
  const ResourceVector target{1000.0, 2048.0};
  for (int i = 0; i < 200; ++i) {
    const auto used = micro.run(target, rng);
    EXPECT_NEAR(used.cpu_rpe2 / target.cpu_rpe2, 1.0, 0.05);
    EXPECT_NEAR(used.memory_mb / target.memory_mb, 1.0, 0.05);
  }
}

TEST(ReplayDriver, AchievesTraceTargets) {
  const RubisLikeApp app;
  ReplayDriver driver(app, MicroBenchmark{}, Rng(2));
  const ResourceVector target{1500.0, 3000.0};
  const auto point = driver.replay_hour(target);
  EXPECT_NEAR(point.achieved.cpu_rpe2 / target.cpu_rpe2, 1.0, 0.1);
  EXPECT_NEAR(point.achieved.memory_mb / target.memory_mb, 1.0, 0.1);
}

TEST(ReplayDriver, BacksOffWhenAppMemoryWouldOvershoot) {
  // A target with high CPU but tiny memory: the driver must throttle the
  // app below the CPU-matching intensity and let the micro-benchmark burn
  // the rest, never exceeding the memory target by more than noise.
  const RubisLikeApp app;
  ReplayDriver driver(app, MicroBenchmark{}, Rng(3));
  const ResourceVector target{4000.0, 600.0};
  const auto point = driver.replay_hour(target);
  EXPECT_LT(point.achieved.memory_mb, target.memory_mb * 1.1);
  EXPECT_NEAR(point.achieved.cpu_rpe2 / target.cpu_rpe2, 1.0, 0.1);
}

TEST(ReplayDriver, ReplaysWholeTraceWindow) {
  const auto trace = make_validation_trace(72, 4);
  const DaxpyLikeApp app;
  ReplayDriver driver(app, MicroBenchmark{}, Rng(5));
  const auto points = driver.replay(trace, 24, 48);
  EXPECT_EQ(points.size(), 48u);
}

TEST(ValidateEmulator, PaperAccuracyBars) {
  // Paper: 99th percentile emulator error 5% for RUBiS, 2% for daxpy, on
  // controlled testbed traces.
  const auto trace = make_validation_trace(336, 10);

  const auto rubis = validate_emulator(RubisLikeApp{}, trace, 0, 336, 11);
  EXPECT_EQ(rubis.points, 336u);
  EXPECT_LE(rubis.cpu_p99_error, 0.05);
  EXPECT_LE(rubis.mem_p99_error, 0.05);

  const auto daxpy = validate_emulator(DaxpyLikeApp{}, trace, 0, 336, 12);
  EXPECT_LE(daxpy.cpu_p99_error, 0.02);
  EXPECT_LE(daxpy.mem_p99_error, 0.02);

  // And the controllable kernel validates tighter than the web app.
  EXPECT_LT(daxpy.cpu_p99_error, rubis.cpu_p99_error);
}

TEST(ValidationTrace, StaysInOperatingRange) {
  const auto trace = make_validation_trace(200, 3);
  for (std::size_t t = 0; t < trace.hours(); ++t) {
    EXPECT_GE(trace.cpu_rpe2[t], 500.0);
    EXPECT_LE(trace.cpu_rpe2[t], 4000.0);
    EXPECT_GE(trace.mem_mb[t], 1500.0);
    EXPECT_LE(trace.mem_mb[t], 4000.0);
  }
}

}  // namespace
}  // namespace vmcw
