// Unit tests for trace/time_series.h.

#include "trace/time_series.h"

#include <gtest/gtest.h>

#include <vector>

namespace vmcw {
namespace {

TimeSeries ramp(int n) {
  std::vector<double> v(n);
  for (int i = 0; i < n; ++i) v[i] = i + 1;
  return TimeSeries(std::move(v));
}

TEST(TimeSeries, ZerosFactory) {
  const auto z = TimeSeries::zeros(5);
  EXPECT_EQ(z.size(), 5u);
  for (std::size_t i = 0; i < z.size(); ++i) EXPECT_DOUBLE_EQ(z[i], 0.0);
}

TEST(TimeSeries, IndexingAndMutation) {
  auto s = TimeSeries::zeros(3);
  s[1] = 7.0;
  EXPECT_DOUBLE_EQ(s[1], 7.0);
}

TEST(TimeSeries, SliceClamped) {
  const auto s = ramp(10);
  EXPECT_EQ(s.slice(0, 10).size(), 10u);
  EXPECT_EQ(s.slice(8, 10).size(), 2u);
  EXPECT_EQ(s.slice(10, 5).size(), 0u);
  EXPECT_EQ(s.slice(100, 5).size(), 0u);
  EXPECT_DOUBLE_EQ(s.slice(3, 2)[0], 4.0);
}

TEST(TimeSeries, Tail) {
  const auto s = ramp(10);
  const auto t = s.tail(3);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_DOUBLE_EQ(t[0], 8.0);
  EXPECT_DOUBLE_EQ(t[2], 10.0);
  EXPECT_EQ(s.tail(100).size(), 10u);
  EXPECT_EQ(s.tail(0).size(), 0u);
}

TEST(TimeSeries, Scale) {
  auto s = ramp(3);
  s.scale(2.0);
  EXPECT_DOUBLE_EQ(s[0], 2.0);
  EXPECT_DOUBLE_EQ(s[2], 6.0);
}

TEST(TimeSeries, WindowReduceMax) {
  const auto s = ramp(6);
  const auto w = s.window_reduce(2, WindowReducer::kMax);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 4.0);
  EXPECT_DOUBLE_EQ(w[2], 6.0);
}

TEST(TimeSeries, WindowReduceMean) {
  const auto s = ramp(6);
  const auto w = s.window_reduce(3, WindowReducer::kMean);
  ASSERT_EQ(w.size(), 2u);
  EXPECT_DOUBLE_EQ(w[0], 2.0);
  EXPECT_DOUBLE_EQ(w[1], 5.0);
}

TEST(TimeSeries, WindowReduceTrailingPartialWindow) {
  const auto s = ramp(5);
  const auto w = s.window_reduce(2, WindowReducer::kMax);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[2], 5.0);  // partial window of one sample
}

TEST(TimeSeries, WindowReduceDegenerateInputs) {
  const auto s = ramp(5);
  EXPECT_TRUE(s.window_reduce(0, WindowReducer::kMax).empty());
  EXPECT_TRUE(TimeSeries().window_reduce(2, WindowReducer::kMax).empty());
  // Window of 1 reproduces the series.
  const auto w = s.window_reduce(1, WindowReducer::kMean);
  ASSERT_EQ(w.size(), 5u);
  EXPECT_DOUBLE_EQ(w[3], 4.0);
}

TEST(TimeSeries, WindowReducePercentiles) {
  const std::vector<double> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const TimeSeries s(v);
  const auto p90 = s.window_reduce(10, WindowReducer::kP90);
  ASSERT_EQ(p90.size(), 1u);
  EXPECT_NEAR(p90[0], 9.1, 1e-9);
  const auto p95 = s.window_reduce(10, WindowReducer::kP95);
  EXPECT_GT(p95[0], p90[0]);
}

TEST(TimeSeries, StatisticsPassThrough) {
  const auto s = ramp(5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.peak(), 5.0);
  EXPECT_DOUBLE_EQ(s.peak_to_average(), 5.0 / 3.0);
  EXPECT_GT(s.cov(), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
}

TEST(Reduce, AllReducersOnWindow) {
  const std::vector<double> w{4, 1, 3, 2};
  EXPECT_DOUBLE_EQ(reduce(w, WindowReducer::kMax), 4.0);
  EXPECT_DOUBLE_EQ(reduce(w, WindowReducer::kMean), 2.5);
  EXPECT_GE(reduce(w, WindowReducer::kP95), reduce(w, WindowReducer::kP90));
}

// Property: for any series, windowed means average to the series mean and
// windowed maxima bound the windowed means.
class WindowReduceProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(WindowReduceProperty, MaxDominatesMean) {
  const auto s = ramp(24);
  const auto maxes = s.window_reduce(GetParam(), WindowReducer::kMax);
  const auto means = s.window_reduce(GetParam(), WindowReducer::kMean);
  ASSERT_EQ(maxes.size(), means.size());
  for (std::size_t i = 0; i < maxes.size(); ++i)
    EXPECT_GE(maxes[i], means[i]);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowReduceProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12, 24));

}  // namespace
}  // namespace vmcw
