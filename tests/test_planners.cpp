// Unit + integration tests for the semi-static and stochastic planners.

#include "core/planners.h"

#include <gtest/gtest.h>

#include "core/emulator.h"
#include "test_helpers.h"
#include "util/stats.h"

namespace vmcw {
namespace {

using testing::constant_vm;
using testing::small_fleet;
using testing::small_settings;

TEST(SemiStaticPlanner, SizesAtHistoryPeak) {
  const auto settings = small_settings();
  std::vector<VmWorkload> vms;
  VmWorkload vm = constant_vm("v", 100.0, 1000.0, 168);
  vm.cpu_rpe2[50] = 900.0;   // history spike
  vm.cpu_rpe2[150] = 5000.0;  // eval-window spike: must NOT affect sizing
  vms.push_back(vm);

  const auto plan = plan_semi_static(vms, settings);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->sizes[0].cpu_rpe2, 900.0);
  EXPECT_DOUBLE_EQ(plan->sizes[0].memory_mb, 1000.0);
}

TEST(SemiStaticPlanner, PlacesEveryVm) {
  const auto vms = small_fleet();
  const auto plan = plan_semi_static(vms, small_settings());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->placement.placed_count(), vms.size());
  EXPECT_GT(plan->hosts_used, 0u);
}

TEST(SemiStaticPlanner, RespectsCapacityOfSizes) {
  const auto vms = small_fleet();
  const auto settings = small_settings();
  const auto plan = plan_semi_static(vms, settings);
  ASSERT_TRUE(plan.has_value());
  const auto capacity = settings.capacity(settings.static_utilization_bound);
  std::vector<ResourceVector> loads(plan->placement.host_index_bound());
  for (std::size_t vm = 0; vm < vms.size(); ++vm)
    loads[static_cast<std::size_t>(plan->placement.host_of(vm))] +=
        plan->sizes[vm];
  for (const auto& load : loads) EXPECT_TRUE(load.fits_within(capacity));
}

TEST(StochasticPlanner, UsesFewerOrEqualHostsThanVanilla) {
  // The whole point of PCP: body sizing + peak clustering packs at least
  // as tight as max sizing.
  const auto vms = small_fleet(120);
  const auto settings = small_settings();
  const auto vanilla = plan_semi_static(vms, settings);
  const auto stochastic = plan_stochastic(vms, settings);
  ASSERT_TRUE(vanilla && stochastic);
  EXPECT_LE(stochastic->hosts_used, vanilla->hosts_used);
}

TEST(StochasticPlanner, PlacesEveryVm) {
  const auto vms = small_fleet();
  const auto plan = plan_stochastic(vms, small_settings());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->placement.placed_count(), vms.size());
}

TEST(Planners, HonorConstraints) {
  const auto vms = small_fleet(40);
  const auto settings = small_settings();
  ConstraintSet cs(vms.size());
  cs.add_affinity(0, 1);
  cs.add_anti_affinity(2, 3);
  cs.pin(4, 0);

  const auto semi = plan_semi_static(vms, settings, cs);
  ASSERT_TRUE(semi.has_value());
  EXPECT_TRUE(cs.satisfied_by(semi->placement));

  const auto stochastic = plan_stochastic(vms, settings, cs);
  ASSERT_TRUE(stochastic.has_value());
  EXPECT_TRUE(cs.satisfied_by(stochastic->placement));
}

TEST(Planners, FailOnOversizedVm) {
  const auto settings = small_settings();
  std::vector<VmWorkload> vms{constant_vm(
      "huge", settings.target.cpu_rpe2 * 2.0, 1000.0, 168)};
  EXPECT_FALSE(plan_semi_static(vms, settings).has_value());
  EXPECT_FALSE(plan_stochastic(vms, settings).has_value());
}

TEST(Planners, EmptyFleet) {
  const std::vector<VmWorkload> vms;
  const auto settings = small_settings();
  const auto semi = plan_semi_static(vms, settings);
  ASSERT_TRUE(semi.has_value());
  EXPECT_EQ(semi->hosts_used, 0u);
}

TEST(StaticPlanner, SizesAtLifetimePeakIncludingEvalWindow) {
  const auto settings = small_settings();
  std::vector<VmWorkload> vms;
  VmWorkload vm = constant_vm("v", 100.0, 1000.0, 168);
  vm.cpu_rpe2[150] = 5000.0;  // spike in the *evaluation* window
  vms.push_back(vm);
  const auto plan = plan_static(vms, settings);
  ASSERT_TRUE(plan.has_value());
  EXPECT_DOUBLE_EQ(plan->sizes[0].cpu_rpe2, 5000.0);
}

TEST(StaticPlanner, NeverTighterThanSemiStatic) {
  // Static sizes over a superset of semi-static's horizon, so it can only
  // need at least as many hosts.
  const auto vms = small_fleet(120);
  const auto settings = small_settings();
  const auto stat = plan_static(vms, settings);
  const auto semi = plan_semi_static(vms, settings);
  ASSERT_TRUE(stat && semi);
  EXPECT_GE(stat->hosts_used, semi->hosts_used);
}

TEST(StaticPlanner, NeverExperiencesContention) {
  // Lifetime-peak sizing is an oracle: replaying the same traces can never
  // exceed what was provisioned.
  const auto vms = small_fleet(80);
  const auto settings = small_settings();
  const auto plan = plan_static(vms, settings);
  ASSERT_TRUE(plan.has_value());
  const Placement schedule[] = {plan->placement};
  const auto report = emulate(vms, schedule, settings, false);
  EXPECT_EQ(report.hours_with_contention, 0u);
}

TEST(StochasticPlanner, MemoryPercentileControlsAggressiveness) {
  // With memory sized at the 50th percentile the plan can only get tighter
  // (or equal) compared to max-sized memory.
  const auto vms = small_fleet(120);
  auto settings = small_settings();
  settings.stochastic_memory_percentile = 100.0;
  const auto conservative = plan_stochastic(vms, settings);
  settings.stochastic_memory_percentile = 50.0;
  const auto aggressive = plan_stochastic(vms, settings);
  ASSERT_TRUE(conservative && aggressive);
  EXPECT_LE(aggressive->hosts_used, conservative->hosts_used);
}

}  // namespace
}  // namespace vmcw
